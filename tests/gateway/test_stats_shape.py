"""Both front-ends expose the same ``GET /stats`` shape.

Dashboards and the serve-load benchmark read one schema regardless of
which mode is serving; this test pins the shared contract: the common
top-level keys, the ``mode``/``workers`` discriminator, and the
per-endpoint latency breakdown with identical bucket and metric names.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.gateway import AsyncGateway
from repro.service.registry import IndexRegistry
from repro.service.server import UsiServer

#: Every server, either mode, must expose at least these.
COMMON_KEYS = {
    "mode", "workers", "server", "endpoints", "registry", "engines",
    "ingest", "profile",
}
ENDPOINT_BUCKETS = {"query", "ingest", "admin"}
LATENCY_KEYS = {
    "total_queries", "total_calls", "uptime_seconds", "window_queries",
    "window_seconds", "qps", "p50_ms", "p95_ms", "p99_ms", "mean_ms",
}


def _exercise_and_fetch_stats(url: str) -> dict:
    request = urllib.request.Request(
        url + "/query",
        data=json.dumps({"pattern": "abra"}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        assert response.status == 200
    with urllib.request.urlopen(url + "/stats", timeout=30) as response:
        return json.loads(response.read())


@pytest.fixture(scope="module")
def threaded_stats(bundle_path):
    registry = IndexRegistry(cache_size=64)
    registry.register_path("demo", bundle_path)
    with UsiServer(registry, port=0) as server:
        yield _exercise_and_fetch_stats(server.url)


@pytest.fixture(scope="module")
def async_stats(bundle_path):
    gateway = AsyncGateway(paths={"demo": bundle_path}, workers=1, port=0)
    with gateway.start_in_thread() as handle:
        yield _exercise_and_fetch_stats(handle.url)


class TestSharedShape:
    def test_common_top_level_keys(self, threaded_stats, async_stats):
        assert COMMON_KEYS <= set(threaded_stats)
        assert COMMON_KEYS <= set(async_stats)

    def test_mode_and_workers_discriminate(self, threaded_stats, async_stats):
        assert threaded_stats["mode"] == "threaded"
        assert threaded_stats["workers"] == 0
        assert async_stats["mode"] == "async"
        assert async_stats["workers"] == 1

    def test_endpoint_breakdown_matches(self, threaded_stats, async_stats):
        for stats in (threaded_stats, async_stats):
            assert set(stats["endpoints"]) == ENDPOINT_BUCKETS
            for bucket in ENDPOINT_BUCKETS:
                assert set(stats["endpoints"][bucket]) == LATENCY_KEYS
            # The one query each server answered landed in its bucket.
            assert stats["endpoints"]["query"]["total_calls"] >= 1
            assert stats["endpoints"]["ingest"]["total_calls"] == 0

    def test_server_recorder_saw_the_query_in_both_modes(
        self, threaded_stats, async_stats
    ):
        assert set(threaded_stats["server"]) == LATENCY_KEYS
        assert set(async_stats["server"]) == LATENCY_KEYS
        assert threaded_stats["server"]["total_queries"] >= 1
        assert async_stats["server"]["total_queries"] >= 1

    def test_registry_block_has_the_same_keys(self, threaded_stats, async_stats):
        # The async side synthesises its registry block when serving
        # purely from the pool; the keys must still line up.
        assert set(threaded_stats["registry"]) == set(async_stats["registry"])
