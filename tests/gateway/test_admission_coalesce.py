"""Admission control and coalescing semantics, including shutdown.

The shutdown cases are the load-bearing ones: a coalesced follower is
awaiting a future it does not own, so drain must either hand it the
leader's answer or fail the future cleanly — a hung ``await`` would pin
a connection forever.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ParameterError
from repro.gateway.admission import AdmissionController, OverloadError
from repro.gateway.coalesce import Coalescer, coalesce_key
from repro.gateway.server import DrainingError


def run(coroutine):
    return asyncio.run(coroutine)


class TestAdmission:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            AdmissionController(max_queue=0)
        with pytest.raises(ParameterError):
            AdmissionController(per_index_limit=0)

    def test_sheds_load_past_max_queue(self):
        async def scenario():
            controller = AdmissionController(max_queue=2, per_index_limit=8)
            async with controller.slot("a"):
                async with controller.slot("a"):
                    with pytest.raises(OverloadError) as caught:
                        async with controller.slot("a"):
                            pass
                    assert caught.value.retry_after >= 1
                    assert "retry later" in str(caught.value)
            stats = controller.stats()
            assert stats == {
                "max_queue": 2,
                "per_index_limit": 8,
                "depth": 0,
                "peak_depth": 2,
                "admitted": 2,
                "rejected": 1,
            }

        run(scenario())

    def test_per_index_limit_queues_rather_than_rejects(self):
        async def scenario():
            controller = AdmissionController(max_queue=10, per_index_limit=1)
            order = []

            async def use_slot(tag, hold):
                async with controller.slot("hot"):
                    order.append(tag)
                    await asyncio.sleep(hold)

            # Both admit (depth 2 < 10); the second *runs* only after
            # the first releases the hot index's only slot.
            await asyncio.gather(use_slot("first", 0.05), use_slot("second", 0))
            assert order == ["first", "second"]
            assert controller.stats()["rejected"] == 0
            assert controller.stats()["peak_depth"] == 2

        run(scenario())

    def test_independent_indexes_do_not_share_semaphores(self):
        async def scenario():
            controller = AdmissionController(max_queue=10, per_index_limit=1)
            async with controller.slot("a"):
                # Same limit, different index: admits and runs freely.
                async with controller.slot("b"):
                    assert controller.depth == 2

        run(scenario())


class TestCoalescer:
    def test_leader_then_followers_share_one_future(self):
        async def scenario():
            coalescer = Coalescer()
            key = coalesce_key("idx", ["abra"], False)
            future, leader = coalescer.lead_or_follow(key)
            assert leader
            same, second_leader = coalescer.lead_or_follow(key)
            assert not second_leader
            assert same is future
            coalescer.resolve(key, ([1.0], None))
            assert await same == ([1.0], None)
            assert coalescer.pending == 0
            # The entry is gone: the next caller leads a fresh request.
            _, leader_again = coalescer.lead_or_follow(key)
            assert leader_again

        run(scenario())

    def test_key_distinguishes_index_count_flag_and_patterns(self):
        assert coalesce_key("a", ["x"], False) != coalesce_key("b", ["x"], False)
        assert coalesce_key("a", ["x"], False) != coalesce_key("a", ["x"], True)
        assert coalesce_key("a", ["x"], False) != coalesce_key("a", ["y"], False)
        assert coalesce_key("a", ["x", "y"], True) == coalesce_key(
            "a", ["x", "y"], True
        )

    def test_fail_propagates_to_followers(self):
        async def scenario():
            coalescer = Coalescer()
            key = coalesce_key("idx", ["abra"], False)
            future, _ = coalescer.lead_or_follow(key)
            follower, _ = coalescer.lead_or_follow(key)
            coalescer.fail(key, OverloadError(5, 5))
            with pytest.raises(OverloadError):
                await follower
            assert future is follower

        run(scenario())

    def test_abort_all_fails_every_pending_future(self):
        async def scenario():
            coalescer = Coalescer()
            keys = [coalesce_key("idx", [p], False) for p in ("a", "b", "c")]
            futures = [coalescer.lead_or_follow(k)[0] for k in keys]
            aborted = coalescer.abort_all(DrainingError("shutting down"))
            assert aborted == 3
            for future in futures:
                with pytest.raises(DrainingError):
                    await future
            assert coalescer.pending == 0

        run(scenario())

    def test_stats_count_leaders_and_followers(self):
        async def scenario():
            coalescer = Coalescer()
            key = coalesce_key("idx", ["abra"], False)
            coalescer.lead_or_follow(key)
            coalescer.lead_or_follow(key)
            coalescer.lead_or_follow(key)
            assert coalescer.stats() == {
                "leaders": 1,
                "followers": 2,
                "pending": 1,
            }

        run(scenario())


class TestDrainWithCoalescedWaiters:
    """Graceful shutdown never leaves a coalesced waiter hanging."""

    def test_waiters_get_the_answer_when_the_leader_finishes(self):
        async def scenario():
            coalescer = Coalescer()
            key = coalesce_key("idx", ["hot"], False)
            future, leader = coalescer.lead_or_follow(key)
            assert leader

            async def follower():
                shared, is_leader = coalescer.lead_or_follow(key)
                assert not is_leader
                return await asyncio.shield(shared)

            waiters = [asyncio.create_task(follower()) for _ in range(4)]
            await asyncio.sleep(0)  # all four are now awaiting
            # The drain path resolves in-flight leaders first...
            coalescer.resolve(key, ([42.0], None))
            # ...then aborts what's left — which is nothing.
            assert coalescer.abort_all(DrainingError("bye")) == 0
            results = await asyncio.gather(*waiters)
            assert results == [([42.0], None)] * 4

        run(scenario())

    def test_waiters_get_a_clean_error_when_drain_times_out(self):
        async def scenario():
            coalescer = Coalescer()
            key = coalesce_key("idx", ["stuck"], False)
            coalescer.lead_or_follow(key)  # leader never resolves

            async def follower():
                shared, _ = coalescer.lead_or_follow(key)
                try:
                    return await asyncio.shield(shared)
                except DrainingError:
                    return "503"

            waiters = [asyncio.create_task(follower()) for _ in range(3)]
            await asyncio.sleep(0)
            assert coalescer.abort_all(DrainingError("timed out")) == 1
            done, pending = await asyncio.wait(waiters, timeout=5)
            assert not pending  # nobody is left hanging
            assert [task.result() for task in done] == ["503"] * 3

        run(scenario())
