"""Shared fixtures for the gateway tests: one v3 bundle to reopen."""

from __future__ import annotations

import pytest

from repro.api import build
from repro.io import save_index

TEXT = "abracadabra banana cabana abracadabra bandana " * 30


@pytest.fixture(scope="session")
def bundle_path(tmp_path_factory):
    """A v3 (mmap-openable) bundle every gateway test reopens."""
    path = tmp_path_factory.mktemp("gateway") / "demo.npz"
    save_index(build(TEXT, k=16), path, container="v3")
    return path
