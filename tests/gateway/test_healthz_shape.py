"""Both front-ends expose the same ``GET /healthz`` shape.

Load balancers and probes read one schema regardless of serving mode;
this pins the shared contract from
:func:`repro.service.requests.health_payload`: the exact key set, the
``ok``/``degraded`` status values, and the worker/breaker fields (the
threaded server has no pool, so it reports zero workers and a closed
breaker).
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.gateway import AsyncGateway
from repro.service.registry import IndexRegistry
from repro.service.server import UsiServer

#: The pinned healthz schema, both modes, byte for byte the same keys.
HEALTH_KEYS = {"status", "workers_alive", "breaker", "quarantined", "reasons"}


def _fetch_health(url: str) -> dict:
    with urllib.request.urlopen(url + "/healthz", timeout=30) as response:
        assert response.status == 200
        return json.loads(response.read())


@pytest.fixture(scope="module")
def threaded_health(bundle_path):
    registry = IndexRegistry(cache_size=64)
    registry.register_path("demo", bundle_path)
    with UsiServer(registry, port=0) as server:
        yield _fetch_health(server.url)


@pytest.fixture(scope="module")
def async_health(bundle_path):
    gateway = AsyncGateway(paths={"demo": bundle_path}, workers=2, port=0)
    with gateway.start_in_thread() as handle:
        yield _fetch_health(handle.url)


class TestSharedShape:
    def test_exact_key_set_in_both_modes(self, threaded_health, async_health):
        assert set(threaded_health) == HEALTH_KEYS
        assert set(async_health) == HEALTH_KEYS

    def test_healthy_values(self, threaded_health, async_health):
        for health in (threaded_health, async_health):
            assert health["status"] == "ok"
            assert health["breaker"] == "closed"
            assert health["quarantined"] == 0
            assert health["reasons"] == []
        assert threaded_health["workers_alive"] == 0  # no pool in-process
        assert async_health["workers_alive"] == 2

    def test_degraded_is_the_only_other_status(self):
        # The contract callers dispatch on: exactly two status values.
        from repro.service.requests import health_payload

        degraded = health_payload(None, breaker_state="open")
        assert degraded["status"] == "degraded"
        assert degraded["reasons"] == ["worker breaker open"]
        assert set(degraded) == HEALTH_KEYS
