"""WorkerPool unit tests: dispatch, crash replacement, shutdown."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ParameterError
from repro.gateway.pool import WorkerCrashed, WorkerPool

PRESENT = ["abra", "ban", "cad", "ana", "a", "bandana"]


def run(coroutine):
    return asyncio.run(coroutine)


class TestLifecycle:
    def test_rejects_bad_parameters(self, bundle_path):
        with pytest.raises(ParameterError):
            WorkerPool({"demo": bundle_path}, workers=0)
        with pytest.raises(ParameterError):
            WorkerPool({}, workers=2)

    def test_start_dispatch_stop(self, bundle_path):
        async def scenario():
            pool = WorkerPool({"demo": bundle_path}, workers=2)
            await pool.start()
            try:
                response = await pool.call(
                    {"op": "query", "index": "demo", "patterns": PRESENT}
                )
                assert response["ok"]
                assert len(response["utilities"]) == len(PRESENT)
                stats = pool.stats()
                assert stats["alive"] == 2
                assert stats["round_trips"] == 1
            finally:
                await pool.stop()
            assert pool.stats()["alive"] == 0

        run(scenario())

    def test_stop_is_idempotent_and_call_after_stop_fails(self, bundle_path):
        async def scenario():
            pool = WorkerPool({"demo": bundle_path}, workers=1)
            await pool.start()
            await pool.stop()
            await pool.stop()
            with pytest.raises(WorkerCrashed):
                await pool.call({"op": "ping"})

        run(scenario())


class TestProtocol:
    def test_unknown_index_and_unknown_op(self, bundle_path):
        async def scenario():
            pool = WorkerPool({"demo": bundle_path}, workers=1)
            await pool.start()
            try:
                response = await pool.call(
                    {"op": "query", "index": "nope", "patterns": ["a"]}
                )
                assert not response["ok"]
                assert response["status"] == 404
                response = await pool.call({"op": "never-heard-of-it"})
                assert not response["ok"]
                assert response["status"] == 400
            finally:
                await pool.stop()

        run(scenario())

    def test_broadcast_stats_reaches_every_worker(self, bundle_path):
        async def scenario():
            pool = WorkerPool({"demo": bundle_path}, workers=2)
            await pool.start()
            try:
                rows = await pool.broadcast({"op": "stats"})
                assert len(rows) == 2
                assert all(row["ok"] for row in rows)
                assert all("demo" in row["engines"] for row in rows)
                assert {row["worker"] for row in rows} == {1, 2}
            finally:
                await pool.stop()

        run(scenario())


class TestCrashRecovery:
    def test_killed_worker_is_replaced_and_call_fails_cleanly(self, bundle_path):
        async def scenario():
            pool = WorkerPool({"demo": bundle_path}, workers=1)
            await pool.start()
            try:
                victim = pool._alive[0]
                victim.process.kill()
                victim.process.join(timeout=10)
                with pytest.raises(WorkerCrashed):
                    await pool.call(
                        {"op": "query", "index": "demo", "patterns": ["abra"]}
                    )
                # The supervisor respawns in the background; the next
                # call waits for the replacement and serves normally.
                response = await pool.call(
                    {"op": "query", "index": "demo", "patterns": ["abra"]}
                )
                assert response["ok"]
                assert pool.restarts == 1
                assert pool.stats()["alive"] == 1
            finally:
                await pool.stop()

        run(scenario())
