"""End-to-end gateway tests over real HTTP, sockets, and processes.

The load-bearing guarantees, each proven here:

* answers are **byte-identical** to a single-process
  :class:`QueryEngine` over the same bundle, for every worker count,
  with and without coalescing;
* N identical in-flight requests cost exactly **one** worker
  round-trip (the pool's ``round_trips`` counter is the witness);
* past ``--max-queue`` the gateway sheds load with ``429`` +
  ``Retry-After`` — but coalesced followers ride free;
* graceful drain: in-flight requests finish or get a clean ``503``,
  new ones get ``503``, nobody hangs.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import open_index
from repro.gateway import AsyncGateway
from repro.service.engine import QueryEngine

from tests.gateway.conftest import TEXT

PATTERNS = ["abra", "ban", "cad", "ana", "a", "bandana", "zzz", "qx", "nana"]


def _post(url: str, payload: dict) -> "tuple[int, bytes, dict]":
    request = urllib.request.Request(
        url + "/query",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def _get(url: str, path: str) -> "tuple[int, dict]":
    with urllib.request.urlopen(url + path, timeout=30) as response:
        return response.status, json.loads(response.read())


@pytest.fixture(scope="module")
def engine(bundle_path):
    """The single-process reference the gateway must match exactly."""
    return QueryEngine(open_index(bundle_path, mmap=True))


def _expected_body(engine, patterns, with_counts=False) -> bytes:
    """The byte-exact response a correct gateway must produce."""
    rows = [
        {"pattern": pattern, "utility": value}
        for pattern, value in zip(patterns, engine.query_batch(patterns))
    ]
    if with_counts:
        for row, pattern in zip(rows, patterns):
            row["count"] = engine.count(pattern)
    return json.dumps({"index": "demo", "results": rows}).encode()


class TestExactness:
    @pytest.mark.parametrize(
        "workers,coalesce", [(1, True), (3, True), (2, False)]
    )
    def test_concurrent_answers_match_single_process_bytes(
        self, bundle_path, engine, workers, coalesce
    ):
        gateway = AsyncGateway(
            paths={"demo": bundle_path}, workers=workers, port=0, coalesce=coalesce
        )
        with gateway.start_in_thread() as handle:
            batches = [
                PATTERNS,
                PATTERNS[:4],
                ["abra"],
                ["abra", "abra", "zzz"],  # duplicates in one batch
                list(reversed(PATTERNS)),
            ] * 3
            results: "list[tuple | None]" = [None] * len(batches)

            def hit(slot, patterns):
                with_counts = slot % 2 == 0
                status, body, _ = _post(
                    handle.url, {"patterns": patterns, "count": with_counts}
                )
                results[slot] = (status, body, with_counts)

            threads = [
                threading.Thread(target=hit, args=(slot, patterns))
                for slot, patterns in enumerate(batches)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            for slot, patterns in enumerate(batches):
                status, body, with_counts = results[slot]
                assert status == 200
                assert body == _expected_body(engine, patterns, with_counts)

    def test_single_pattern_and_errors_match_protocol(self, bundle_path, engine):
        gateway = AsyncGateway(paths={"demo": bundle_path}, workers=1, port=0)
        with gateway.start_in_thread() as handle:
            status, body, _ = _post(handle.url, {"pattern": "abra"})
            assert status == 200
            assert body == _expected_body(engine, ["abra"])
            status, body, _ = _post(handle.url, {"pattern": "x", "index": "nope"})
            assert status == 404
            assert json.loads(body) == {"error": "unknown index 'nope'"}
            status, body, _ = _post(handle.url, {})
            assert status == 400
            assert json.loads(body) == {
                "error": "provide exactly one of 'pattern' / 'patterns'"
            }


class TestPropertyExactness:
    @pytest.fixture(scope="class")
    def shared_gateway(self, bundle_path):
        gateway = AsyncGateway(paths={"demo": bundle_path}, workers=2, port=0)
        with gateway.start_in_thread() as handle:
            yield handle

    @given(
        patterns=st.lists(
            st.text(alphabet=sorted(set(TEXT)), min_size=1, max_size=8),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_random_patterns_round_trip_exactly(
        self, shared_gateway, engine, patterns
    ):
        status, body, _ = _post(shared_gateway.url, {"patterns": patterns})
        assert status == 200
        assert body == _expected_body(engine, patterns)


class TestCoalescing:
    def test_duplicate_inflight_requests_cost_one_round_trip(self, bundle_path):
        gateway = AsyncGateway(paths={"demo": bundle_path}, workers=1, port=0)
        with gateway.start_in_thread() as handle:

            async def checkout():
                return await gateway.pool._idle.get()

            async def put_back(worker):
                gateway.pool._idle.put_nowait(worker)

            # Hold the only worker so the leader parks inside the pool
            # and every duplicate arriving meanwhile must coalesce.
            worker = handle.run(checkout())
            before = gateway.pool.round_trips
            fan_out = 6
            results = [None] * fan_out

            def hit(slot):
                results[slot] = _post(handle.url, {"pattern": "abra"})

            threads = [
                threading.Thread(target=hit, args=(slot,))
                for slot in range(fan_out)
            ]
            for thread in threads:
                thread.start()
            # Wait until one leader + five followers are registered.
            for _ in range(500):
                stats = gateway.coalescer.stats()
                if stats["followers"] >= fan_out - 1:
                    break
                threading.Event().wait(0.01)
            assert gateway.coalescer.stats()["pending"] == 1
            handle.run(put_back(worker))
            for thread in threads:
                thread.join(timeout=30)

            statuses = [status for status, _, _ in results]
            bodies = {body for _, body, _ in results}
            assert statuses == [200] * fan_out
            assert len(bodies) == 1  # everyone got the same bytes
            # The proof: six concurrent identical requests, one dispatch.
            assert gateway.pool.round_trips - before == 1
            assert gateway.coalescer.stats()["followers"] == fan_out - 1


class TestOverload:
    def test_sheds_with_429_and_retry_after_but_followers_ride_free(
        self, bundle_path
    ):
        gateway = AsyncGateway(
            paths={"demo": bundle_path}, workers=1, max_queue=1, port=0
        )
        with gateway.start_in_thread() as handle:

            async def checkout():
                return await gateway.pool._idle.get()

            async def put_back(worker):
                gateway.pool._idle.put_nowait(worker)

            worker = handle.run(checkout())
            leader_result = {}

            def leader():
                leader_result["response"] = _post(handle.url, {"pattern": "abra"})

            leader_thread = threading.Thread(target=leader)
            leader_thread.start()
            for _ in range(500):  # the leader now owns the only slot
                if gateway.admission.depth == 1:
                    break
                threading.Event().wait(0.01)
            assert gateway.admission.depth == 1

            # A *different* pattern needs its own slot: shed with 429.
            status, body, headers = _post(handle.url, {"pattern": "ban"})
            assert status == 429
            assert headers.get("Retry-After") == "1"
            assert "admission queue full" in json.loads(body)["error"]

            # The *same* pattern coalesces: no slot needed, no 429.
            follower_result = {}

            def follower():
                follower_result["response"] = _post(handle.url, {"pattern": "abra"})

            follower_thread = threading.Thread(target=follower)
            follower_thread.start()
            for _ in range(500):
                if gateway.coalescer.stats()["followers"] >= 1:
                    break
                threading.Event().wait(0.01)

            handle.run(put_back(worker))
            leader_thread.join(timeout=30)
            follower_thread.join(timeout=30)
            assert leader_result["response"][0] == 200
            assert follower_result["response"][0] == 200
            assert gateway.admission.stats()["rejected"] == 1


class TestDrain:
    def test_listener_refuses_connections_after_shutdown(self, bundle_path):
        gateway = AsyncGateway(paths={"demo": bundle_path}, workers=1, port=0)
        handle = gateway.start_in_thread()
        try:
            status, body, _ = _post(handle.url, {"pattern": "abra"})
            assert status == 200
        finally:
            handle.shutdown()
        # The listener is gone: connecting again must fail fast.
        with pytest.raises(OSError):
            urllib.request.urlopen(handle.url + "/healthz", timeout=5)

    def test_stuck_inflight_request_gets_clean_503_not_a_hang(self, bundle_path):
        gateway = AsyncGateway(
            paths={"demo": bundle_path}, workers=1, port=0, drain_timeout=0.3
        )
        handle = gateway.start_in_thread()

        async def checkout():
            return await gateway.pool._idle.get()

        handle.run(checkout())  # the worker never comes back
        inflight = {}

        def stuck_leader():
            inflight["response"] = _post(handle.url, {"pattern": "abra"})

        leader = threading.Thread(target=stuck_leader)
        leader.start()
        for _ in range(500):
            if gateway.admission.depth == 1:
                break
            threading.Event().wait(0.01)

        handle.shutdown()  # drain times out after 0.3s, then cleans up
        leader.join(timeout=30)
        assert not leader.is_alive()  # never hung
        status, body, _ = inflight["response"]
        assert status == 503
        assert json.loads(body) == {"error": "server is shutting down"}


class TestIntrospection:
    def test_stats_and_indexes_shape(self, bundle_path):
        gateway = AsyncGateway(paths={"demo": bundle_path}, workers=2, port=0)
        with gateway.start_in_thread() as handle:
            _post(handle.url, {"pattern": "abra"})
            status, stats = _get(handle.url, "/stats")
            assert status == 200
            assert stats["mode"] == "async"
            assert stats["workers"] == 2
            assert set(stats["endpoints"]) == {"query", "ingest", "admin"}
            assert stats["endpoints"]["query"]["total_calls"] >= 1
            assert stats["pool"]["alive"] == 2
            assert stats["pool"]["round_trips"] >= 1
            assert stats["admission"]["max_queue"] == 64
            assert stats["coalescer"]["leaders"] >= 1
            assert len(stats["pool"]["worker_engines"]) >= 1

            status, listing = _get(handle.url, "/indexes")
            assert status == 200
            (row,) = listing["indexes"]
            assert row["name"] == "demo"
            assert row["backend"] == "usi"
            assert row["served_by"] == "pool"

            status, health = _get(handle.url, "/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["workers_alive"] == 2
            assert health["breaker"] == "closed"
            assert health["reasons"] == []


class TestInlineRegistry:
    def test_live_index_serves_queries_and_ingest_inline(self, bundle_path):
        from repro.ingest import LiveIndex
        from repro.service.registry import IndexRegistry
        from repro.strings.alphabet import Alphabet

        registry = IndexRegistry(cache_size=64)
        registry.register(
            "live", LiveIndex(Alphabet.from_text("abcdehlorw "), k=8)
        )
        gateway = AsyncGateway(
            paths={"demo": bundle_path}, registry=registry, workers=1, port=0
        )
        with gateway.start_in_thread() as handle:
            payload = {"doc": "hello world", "index": "live"}
            request = urllib.request.Request(
                handle.url + "/ingest",
                data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 200
                assert json.loads(response.read())["seq"] == 1

            status, body, _ = _post(
                handle.url, {"pattern": "hello", "index": "live"}
            )
            assert status == 200
            assert json.loads(body)["results"][0]["utility"] == 5.0

            # Two names registered: an unnamed query is ambiguous now.
            status, body, _ = _post(handle.url, {"pattern": "a"})
            assert status == 400

            # Ingest into the pool-backed (static) index is refused.
            status, body, _ = _post_ingest(handle.url, {"doc": "x", "index": "demo"})
            assert status == 400
            assert "does not ingest" in json.loads(body)["error"]

            status, listing = _get(handle.url, "/indexes")
            served_by = {row["name"]: row["served_by"] for row in listing["indexes"]}
            assert served_by == {"demo": "pool", "live": "inline"}


def _post_ingest(url: str, payload: dict) -> "tuple[int, bytes, dict]":
    request = urllib.request.Request(
        url + "/ingest",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)
