"""``usi serve --async`` end-to-end: real process, real SIGTERM drain."""

from __future__ import annotations

import json
import signal
import socket
import subprocess
import sys
import time
import urllib.request

import pytest


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_sigterm_drains_the_gateway_cleanly(bundle_path):
    port = _free_port()
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--index", str(bundle_path), "--name", "demo",
            "--async", "--workers", "1", "--port", str(port),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = process.stdout.readline()
        assert "gateway serving demo" in banner
        assert "1 workers" in banner

        url = f"http://127.0.0.1:{port}"
        request = urllib.request.Request(
            url + "/query",
            data=json.dumps({"pattern": "abra"}).encode(),
            headers={"Content-Type": "application/json"},
        )
        deadline = time.monotonic() + 60
        while True:  # the banner prints before the listener binds
            try:
                with urllib.request.urlopen(request, timeout=10) as response:
                    answer = json.loads(response.read())
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.1)
        assert answer["results"][0]["utility"] > 0

        with urllib.request.urlopen(url + "/stats", timeout=10) as response:
            stats = json.loads(response.read())
        assert stats["mode"] == "async"
        assert stats["workers"] == 1

        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=60)
        assert process.returncode == 0
        assert "drained in-flight requests, pool stopped" in output
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=10)
