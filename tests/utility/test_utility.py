"""Tests for utility functions and the PSW array."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.utility.functions import (
    GlobalUtility,
    PrefixSumLocalUtility,
    RangeMaxLocalUtility,
    RangeMinLocalUtility,
    make_global_utility,
)
from repro.utility.prefix_sums import PswArray


class TestPswArray:
    def test_local_utility_matches_direct_sum(self):
        w = [0.9, 1, 3, 2, 0.7]
        psw = PswArray(w)
        for i in range(5):
            for length in range(1, 5 - i + 1):
                assert psw.local_utility(i, length) == pytest.approx(
                    sum(w[i : i + length])
                )

    def test_prefix_utility_is_paper_psw(self):
        w = [1.0, 2.0, 3.0]
        psw = PswArray(w)
        assert psw.prefix_utility(0) == pytest.approx(1.0)
        assert psw.prefix_utility(2) == pytest.approx(6.0)

    def test_vectorised_matches_scalar(self):
        rng = np.random.default_rng(0)
        w = rng.uniform(-1, 1, size=50)
        psw = PswArray(w)
        positions = np.asarray([0, 3, 17, 40])
        batch = psw.local_utilities(positions, 5)
        for pos, value in zip(positions.tolist(), batch.tolist()):
            assert value == pytest.approx(psw.local_utility(pos, 5))

    def test_out_of_range(self):
        psw = PswArray([1.0, 2.0])
        with pytest.raises(ParameterError):
            psw.local_utility(0, 3)
        with pytest.raises(ParameterError):
            psw.local_utility(-1, 1)
        with pytest.raises(ParameterError):
            psw.local_utilities(np.asarray([1]), 2)

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            PswArray([])

    def test_append_extends(self):
        psw = PswArray([1.0])
        psw.append(2.0)
        psw.append(3.0)
        assert psw.length == 3
        assert psw.local_utility(0, 3) == pytest.approx(6.0)
        assert psw.local_utility(2, 1) == pytest.approx(3.0)

    def test_appends_interleaved_with_queries(self):
        psw = PswArray([1.0, 1.0])
        assert psw.local_utility(0, 2) == pytest.approx(2.0)
        psw.append(5.0)
        assert psw.local_utility(1, 2) == pytest.approx(6.0)

    def test_nbytes(self):
        assert PswArray([1.0, 2.0]).nbytes() == 24  # (n + 1) float64

    @given(st.lists(st.floats(-5, 5, allow_nan=False, width=32), min_size=1, max_size=40),
           st.data())
    def test_sliding_window_property(self, w, data):
        """u(i..j) equals u(i..i') + u(i'+1..j): the class-U property."""
        psw = PswArray(w)
        n = len(w)
        i = data.draw(st.integers(0, n - 1))
        j = data.draw(st.integers(i, n - 1))
        split = data.draw(st.integers(i, j))
        whole = psw.local_utility(i, j - i + 1)
        left = psw.local_utility(i, split - i + 1)
        right = psw.local_utility(split + 1, j - split) if split < j else 0.0
        assert whole == pytest.approx(left + right, abs=1e-6)


class TestRangeLocalUtilities:
    def test_min(self):
        u = RangeMinLocalUtility([3.0, 1.0, 2.0])
        assert u.local_utility(0, 3) == 1.0
        assert u.local_utility(2, 1) == 2.0

    def test_max(self):
        u = RangeMaxLocalUtility([3.0, 1.0, 2.0])
        assert u.local_utility(0, 3) == 3.0
        assert u.local_utility(1, 2) == 2.0

    def test_vectorised(self):
        u = RangeMinLocalUtility([5.0, 4.0, 3.0, 2.0, 1.0])
        np.testing.assert_allclose(
            u.local_utilities(np.asarray([0, 2]), 2), [4.0, 2.0]
        )

    def test_out_of_range(self):
        with pytest.raises(ParameterError):
            RangeMinLocalUtility([1.0]).local_utility(0, 2)

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            RangeMaxLocalUtility([])


class TestGlobalUtility:
    def test_sum(self):
        assert GlobalUtility("sum").aggregate([1.0, 2.0, 3.0]) == pytest.approx(6.0)

    def test_min_max_avg(self):
        values = np.asarray([4.0, 1.0, 3.0])
        assert GlobalUtility("min").aggregate(values) == 1.0
        assert GlobalUtility("max").aggregate(values) == 4.0
        assert GlobalUtility("avg").aggregate(values) == pytest.approx(8.0 / 3)

    def test_identity_on_empty(self):
        for name in ("sum", "min", "max", "avg"):
            assert GlobalUtility(name).aggregate([]) == 0.0

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError):
            GlobalUtility("median")

    def test_make_global_utility_passthrough(self):
        u = GlobalUtility("min")
        assert make_global_utility(u) is u
        assert make_global_utility("max").name == "max"

    def test_grouped_sum(self):
        groups = np.asarray([0, 1, 0, 1])
        values = np.asarray([1.0, 2.0, 3.0, 4.0])
        out = GlobalUtility("sum").grouped_aggregate(groups, values, 2)
        np.testing.assert_allclose(out, [4.0, 6.0])

    def test_grouped_min_max_avg(self):
        groups = np.asarray([0, 1, 0, 1])
        values = np.asarray([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(
            GlobalUtility("min").grouped_aggregate(groups, values, 2), [1.0, 2.0]
        )
        np.testing.assert_allclose(
            GlobalUtility("max").grouped_aggregate(groups, values, 2), [3.0, 4.0]
        )
        np.testing.assert_allclose(
            GlobalUtility("avg").grouped_aggregate(groups, values, 2), [2.0, 3.0]
        )

    def test_running_state_roundtrip(self):
        for name, expect in [("sum", 6.0), ("min", 1.0), ("max", 3.0), ("avg", 2.0)]:
            u = GlobalUtility(name)
            state = u.fresh_state()
            for v in [1.0, 2.0, 3.0]:
                state = u.push(state, v)
            assert u.finalize(state) == pytest.approx(expect)

    def test_running_state_empty_is_identity(self):
        u = GlobalUtility("min")
        assert u.finalize(u.fresh_state()) == u.identity

    @given(st.lists(st.floats(-10, 10, allow_nan=False, width=32), min_size=1, max_size=30))
    def test_grouped_matches_flat_property(self, values):
        """One group must equal plain aggregation for every aggregator."""
        arr = np.asarray(values, dtype=np.float64)
        groups = np.zeros(len(arr), dtype=np.int64)
        for name in ("sum", "min", "max", "avg"):
            u = GlobalUtility(name)
            grouped = u.grouped_aggregate(groups, arr, 1)
            assert grouped[0] == pytest.approx(u.aggregate(arr), abs=1e-9)


class TestPrefixSumAlias:
    def test_alias_is_psw(self):
        assert issubclass(PrefixSumLocalUtility, PswArray)
