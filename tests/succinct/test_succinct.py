"""Tests for the succinct substrate: bitvector, wavelet tree, BWT, FM-index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConstructionError, ParameterError, PatternError
from repro.strings.alphabet import Alphabet
from repro.strings.occurrences import naive_occurrences
from repro.succinct.bitvector import RankSelectBitVector
from repro.succinct.bwt import bwt_from_sa, bwt_transform, inverse_bwt
from repro.succinct.fm_index import FmIndex
from repro.succinct.wavelet import WaveletTree
from repro.suffix.suffix_array import build_suffix_array

from tests.conftest import texts_mixed


class TestBitVector:
    def test_rank_matches_cumsum(self):
        rng = np.random.default_rng(0)
        bits = rng.random(500) < 0.3
        bv = RankSelectBitVector(bits)
        prefix = np.concatenate(([0], np.cumsum(bits)))
        for i in range(0, 501, 7):
            assert bv.rank1(i) == prefix[i]
            assert bv.rank0(i) == i - prefix[i]

    def test_rank_spans_blocks(self):
        bits = [True] * 200  # > 3 blocks of 64
        bv = RankSelectBitVector(bits)
        assert bv.rank1(200) == 200
        assert bv.rank1(65) == 65

    def test_select_inverts_rank(self):
        bits = [False, True, True, False, True]
        bv = RankSelectBitVector(bits)
        assert bv.select1(1) == 1
        assert bv.select1(3) == 4
        assert bv.select0(2) == 3

    def test_select_out_of_range(self):
        bv = RankSelectBitVector([True, False])
        with pytest.raises(ParameterError):
            bv.select1(2)
        with pytest.raises(ParameterError):
            bv.select0(0)

    def test_rank_out_of_range(self):
        bv = RankSelectBitVector([True])
        with pytest.raises(ParameterError):
            bv.rank1(2)

    def test_empty(self):
        bv = RankSelectBitVector([])
        assert bv.ones == 0
        assert bv.rank1(0) == 0

    def test_getitem_and_len(self):
        bv = RankSelectBitVector([True, False])
        assert bv[0] and not bv[1]
        assert len(bv) == 2
        assert bv.nbytes() > 0

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=30)
    def test_select_rank_roundtrip_property(self, bits):
        bv = RankSelectBitVector(bits)
        for k in range(1, bv.ones + 1):
            position = bv.select1(k)
            assert bits[position]
            assert bv.rank1(position) == k - 1


class TestWaveletTree:
    def test_access(self):
        values = [3, 1, 4, 1, 5, 0, 2]
        wt = WaveletTree(values)
        for i, v in enumerate(values):
            assert wt.access(i) == v

    def test_rank_matches_count(self):
        values = [3, 1, 4, 1, 5, 0, 2, 1, 1]
        wt = WaveletTree(values)
        for symbol in range(6):
            for i in range(len(values) + 1):
                assert wt.rank(symbol, i) == values[:i].count(symbol)

    def test_select(self):
        values = [2, 0, 2, 1, 2]
        wt = WaveletTree(values)
        assert wt.select(2, 1) == 0
        assert wt.select(2, 3) == 4
        assert wt.select(1, 1) == 3

    def test_rank_of_absent_symbol(self):
        wt = WaveletTree([0, 1], sigma=5)
        assert wt.rank(4, 2) == 0

    def test_validation(self):
        with pytest.raises(ParameterError):
            WaveletTree([[0, 1]])
        with pytest.raises(ParameterError):
            WaveletTree([-1])
        with pytest.raises(ParameterError):
            WaveletTree([5], sigma=3)
        with pytest.raises(ParameterError):
            WaveletTree([0]).access(1)
        with pytest.raises(ParameterError):
            WaveletTree([0]).select(0, 2)

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=200))
    @settings(max_examples=30)
    def test_rank_select_access_property(self, values):
        wt = WaveletTree(values, sigma=8)
        arr = list(values)
        mid = len(arr) // 2
        for symbol in set(arr):
            assert wt.rank(symbol, mid) == arr[:mid].count(symbol)
            total = arr.count(symbol)
            assert wt.select(symbol, total) == max(
                i for i, v in enumerate(arr) if v == symbol
            )
        assert wt.access(mid if mid < len(arr) else 0) == arr[mid if mid < len(arr) else 0]


class TestBwt:
    def test_banana(self):
        codes = Alphabet.from_text("BANANA").encode("BANANA")
        bwt, sa = bwt_transform(codes)
        # BWT of "banana$" is "annb$aa" (with $ = 0 and letters +1).
        letters = "".join(
            "$" if c == 0 else "ABN"[c - 1] for c in bwt.tolist()
        )
        assert letters == "ANNB$AA"

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            codes = rng.integers(0, 4, size=int(rng.integers(1, 60)))
            bwt, _ = bwt_transform(codes)
            np.testing.assert_array_equal(inverse_bwt(bwt), codes)

    def test_sa_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            bwt_from_sa(np.asarray([0, 1]), np.asarray([0]))

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            bwt_transform(np.empty(0, dtype=np.int64))

    @given(texts_mixed(max_size=60))
    def test_roundtrip_property(self, text):
        codes = Alphabet.from_text(text).encode(text)
        bwt, _ = bwt_transform(codes)
        np.testing.assert_array_equal(inverse_bwt(bwt), codes)


class TestFmIndex:
    def test_count_matches_naive(self):
        text = "MISSISSIPPI"
        alpha = Alphabet.from_text(text)
        fm = FmIndex(alpha.encode(text))
        for pattern in ["ISS", "I", "MISS", "PPI", "S", "X" if False else "IP"]:
            encoded = alpha.encode(pattern)
            assert fm.count(encoded) == len(naive_occurrences(text, pattern))

    def test_occurrences_match_naive(self):
        text = "ABABABAB"
        alpha = Alphabet.from_text(text)
        fm = FmIndex(alpha.encode(text), sample_rate=3)
        for pattern in ["AB", "BA", "ABAB", "A"]:
            encoded = alpha.encode(pattern)
            assert sorted(fm.occurrences(encoded).tolist()) == naive_occurrences(
                text, pattern
            )

    def test_absent_pattern(self):
        alpha = Alphabet.from_text("AAB")
        fm = FmIndex(alpha.encode("AAB"))
        assert fm.count(alpha.encode("BA")) == 0
        assert fm.occurrences(alpha.encode("BB")).size == 0
        assert fm.interval(alpha.encode("BB")) == (0, -1)

    def test_symbol_outside_alphabet(self):
        fm = FmIndex(np.asarray([0, 1, 0]))
        assert fm.count(np.asarray([7])) == 0

    def test_empty_pattern_rejected(self):
        fm = FmIndex(np.asarray([0, 1]))
        with pytest.raises(PatternError):
            fm.count(np.empty(0, dtype=np.int64))

    def test_validation(self):
        with pytest.raises(ConstructionError):
            FmIndex(np.empty(0, dtype=np.int64))
        with pytest.raises(ParameterError):
            FmIndex(np.asarray([0]), sample_rate=0)

    def test_sample_rates_agree(self):
        codes = np.asarray([0, 1, 2, 0, 1, 2, 0, 1], dtype=np.int64)
        dense = FmIndex(codes, sample_rate=1)
        sparse = FmIndex(codes, sample_rate=8)
        pattern = np.asarray([0, 1])
        assert sorted(dense.occurrences(pattern).tolist()) == sorted(
            sparse.occurrences(pattern).tolist()
        )

    def test_nbytes_positive(self):
        assert FmIndex(np.asarray([0, 1, 0, 1])).nbytes() > 0

    @given(texts_mixed(max_size=50), st.data())
    @settings(max_examples=30, deadline=None)
    def test_matches_suffix_array_property(self, text, data):
        alpha = Alphabet.from_text(text)
        codes = alpha.encode(text)
        fm = FmIndex(codes, sample_rate=4)
        start = data.draw(st.integers(0, len(text) - 1))
        length = data.draw(st.integers(1, min(5, len(text) - start)))
        pattern = codes[start : start + length].astype(np.int64)
        assert sorted(fm.occurrences(pattern).tolist()) == naive_occurrences(
            codes, pattern
        )
