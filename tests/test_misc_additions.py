"""Coverage for late additions: navigator surface, sketch reset, bases."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.hashing.karp_rabin import KarpRabinFingerprinter
from repro.streaming.count_min import CountMinSketch
from repro.strings.alphabet import Alphabet
from repro.suffix_tree.navigation import SuffixTreeNavigator
from repro.suffix_tree.ukkonen import SuffixTree


class TestNavigatorSurface:
    def _navigator(self, text: str):
        alpha = Alphabet.from_text(text)
        return SuffixTreeNavigator(SuffixTree.from_codes(alpha.encode(text))), alpha

    def test_interval_width_is_count(self):
        nav, alpha = self._navigator("ABABAB")
        lb, rb = nav.interval(alpha.encode("AB"))
        assert rb - lb + 1 == 3

    def test_interval_absent_pattern(self):
        nav, alpha = self._navigator("AAB")
        assert nav.interval(alpha.encode("BA")) == (0, -1)

    def test_nbytes_positive_and_grows(self):
        small, _ = self._navigator("AB")
        large, _ = self._navigator("ABRACADABRA" * 5)
        assert 0 < small.nbytes() < large.nbytes()


class TestSketchReset:
    def test_reset_zeroes_counts(self):
        sketch = CountMinSketch(width=32, depth=2, seed=0)
        for item in range(50):
            sketch.add(item)
        assert sketch.estimate(7) >= 1
        sketch.reset()
        assert sketch.estimate(7) == 0

    def test_reset_keeps_hash_functions(self):
        sketch = CountMinSketch(width=32, depth=2, seed=0)
        sketch.add(5, amount=3)
        before = sketch.estimate(5)
        sketch.reset()
        sketch.add(5, amount=3)
        assert sketch.estimate(5) == before


class TestFingerprinterBases:
    def test_with_bases_reproduces_fingerprints(self):
        codes = Alphabet.dna().encode("ACGTACGT")
        original = KarpRabinFingerprinter(codes, seed=3)
        clone = KarpRabinFingerprinter.with_bases(codes, *original.bases)
        for i in range(5):
            assert clone.fragment(i, 3) == original.fragment(i, 3)
        assert clone.of_codes(codes[:4]) == original.of_codes(codes[:4])

    def test_different_bases_differ(self):
        codes = Alphabet.dna().encode("ACGTACGT")
        a = KarpRabinFingerprinter(codes, seed=0)
        b = KarpRabinFingerprinter(codes, seed=1)
        assert a.bases != b.bases
        assert a.fragment(0, 4) != b.fragment(0, 4)

    def test_with_bases_validation(self):
        codes = np.asarray([0, 1], dtype=np.int64)
        with pytest.raises(ParameterError):
            KarpRabinFingerprinter.with_bases(codes, 1, 12345)
        with pytest.raises(ParameterError):
            KarpRabinFingerprinter.with_bases(codes, 12345, 2**40)
