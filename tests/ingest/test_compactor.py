"""The background compactor: thresholds, hot-swap publishing, warming."""

from __future__ import annotations

import time

import pytest

import repro
from repro.api import as_index
from repro.ingest import Compactor, LiveIndex
from repro.service.registry import IndexRegistry

from tests.ingest.test_live import ALPHABET, K, assert_matches_monolithic


def make_live(**options):
    options.setdefault("k", K)
    options.setdefault("seal_chars", 8)
    return LiveIndex(ALPHABET, **options)


class TestRunOnce:
    def test_below_threshold_does_nothing(self):
        live = make_live(seal_chars=1 << 20)
        live.append_document("abab")
        compactor = Compactor(live)
        assert compactor.run_once() is False
        assert compactor.cycles == 1
        assert live.generation == 1

    def test_threshold_triggers_a_generation(self):
        live = make_live(seal_chars=4)
        docs = [("abab", None), ("bb", None)]
        for text, _ in docs:
            live.append_document(text)
        compactor = Compactor(live)
        assert compactor.run_once() is True
        assert compactor.compactions == 1
        assert live.generation == 2
        assert live.shard_count == 1
        assert_matches_monolithic(live, docs)

    def test_force_compacts_a_small_memtable(self):
        live = make_live(seal_chars=1 << 20)
        live.append_document("ab")
        compactor = Compactor(live)
        assert compactor.run_once(force=True) is True
        assert live.shard_count == 1
        assert compactor.run_once(force=True) is False  # nothing left

    def test_empty_memtable_never_compacts(self):
        compactor = Compactor(make_live())
        assert compactor.run_once(force=True) is False
        assert compactor.compactions == 0


class TestRegistryPublishing:
    def test_replace_publishes_without_closing_the_live_index(self):
        live = make_live(seal_chars=4)
        adapter = as_index(live)
        registry = IndexRegistry()
        registry.register("corpus", adapter)
        compactor = Compactor(live, registry=registry, name="corpus",
                              index=adapter)
        live.append_document("abab")
        live.append_document("ba")
        assert compactor.run_once() is True
        # New generation is visible; the index object survived the swap.
        rows = {row["name"]: row for row in registry.describe()}
        assert rows["corpus"]["generation"] == 2
        engine = registry.get("corpus")
        assert engine.index is adapter
        assert engine.query("ab") == pytest.approx(live.query("ab"))
        assert engine.query("ab") > 0.0
        assert registry.stats()["replacements"] == 1
        assert compactor.last_error is None

    def test_warming_populates_the_fresh_engine_cache(self):
        live = make_live(seal_chars=4, hot_window=2)
        registry = IndexRegistry()
        registry.register("corpus", live)
        compactor = Compactor(live, registry=registry, name="corpus",
                              index=live)
        for _ in range(4):
            live.append_document("abab")
        assert compactor.run_once() is True
        assert compactor.last_error is None
        stats = registry.get("corpus").stats()
        # The hot patterns were queried into the cache at publish time.
        assert stats["cache_entries"] > 0

    def test_registry_ingest_stats_surface_the_live_counters(self):
        live = make_live()
        registry = IndexRegistry()
        registry.register("corpus", live)
        live.append_document("ab")
        stats = registry.ingest_stats()
        assert stats["corpus"]["last_seq"] == 1
        assert stats["corpus"]["generation"] == 1
        # A static index contributes no ingest section.
        registry.register("static", repro.build("abab", k=4, backend="usi"))
        assert set(registry.ingest_stats()) == {"corpus"}


class TestBackgroundThread:
    def test_thread_compacts_while_appends_continue(self):
        live = make_live(seal_chars=16)
        docs = []
        with Compactor(live, interval=0.01):
            for i in range(30):
                text = "abab" if i % 2 else "bba"
                live.append_document(text)
                docs.append((text, None))
                time.sleep(0.002)
            deadline = time.time() + 5
            while live.generation == 1 and time.time() < deadline:
                time.sleep(0.01)
        assert live.generation > 1
        assert live.shard_count >= 1
        assert_matches_monolithic(live, docs)

    def test_stop_is_idempotent_and_restartable(self):
        compactor = Compactor(make_live(), interval=0.01)
        compactor.start()
        compactor.start()  # second start is a no-op
        compactor.stop()
        compactor.stop()
        compactor.start()
        compactor.stop()
