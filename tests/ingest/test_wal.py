"""Write-ahead log: durability, replay, torn tails, rotation, pruning."""

import pytest

from repro.errors import ParameterError
from repro.ingest.wal import WriteAheadLog, replay_all


def _records(log):
    return [(r.seq, list(r.codes), r.utilities) for r in replay_all(log)]


class TestRoundTrip:
    def test_appends_replay_in_order(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append(1, [0, 1, 2])
        log.append(2, [3], [0.5])
        log.append(3, [])
        log.close()

        reopened = WriteAheadLog(tmp_path)
        records = _records(reopened)
        assert records == [
            (1, [0, 1, 2], None),
            (2, [3], [0.5]),
            (3, [], None),
        ]
        assert reopened.last_sequence() == 3

    def test_utilities_survive_exactly(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        utilities = [0.1, 2.5, 3.0000001]
        log.append(7, [1, 2, 3], utilities)
        log.close()
        (record,) = replay_all(WriteAheadLog(tmp_path))
        assert record.utilities == pytest.approx(utilities)

    def test_empty_log_replays_nothing(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        assert _records(log) == []
        assert log.last_sequence() == 0


class TestCrashRecovery:
    def test_torn_final_line_is_truncated(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append(1, [0, 1])
        log.append(2, [2, 3])
        log.close()
        (segment,) = log.segments()
        # Simulate a crash mid-write: chop the last record in half.
        data = segment.read_bytes()
        segment.write_bytes(data[: len(data) - 7])

        reopened = WriteAheadLog(tmp_path)
        records = _records(reopened)
        assert [r[0] for r in records] == [1]
        # The torn bytes are gone: appends continue from a clean tail.
        reopened.append(2, [2, 3])
        assert [r[0] for r in _records(WriteAheadLog(tmp_path))] == [1, 2]

    def test_corruption_before_the_tail_raises(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append(1, [0])
        log.append(2, [1])
        log.append(3, [2])
        log.close()
        (segment,) = log.segments()
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[0] = b"00000000 {broken\n"
        segment.write_bytes(b"".join(lines))
        with pytest.raises(ParameterError, match="corrupt"):
            replay_all(WriteAheadLog(tmp_path))

    def test_torn_line_in_a_non_final_segment_raises(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append(1, [0])
        log.rotate()
        log.append(2, [1])
        log.close()
        first = sorted(log.segments())[0]
        data = first.read_bytes()
        first.write_bytes(data[:-5])
        with pytest.raises(ParameterError, match="corrupt"):
            replay_all(WriteAheadLog(tmp_path))


class TestRotationAndPruning:
    def test_rotate_starts_a_new_segment(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append(1, [0])
        log.rotate()
        log.append(2, [1])
        assert len(log.segments()) == 2
        assert [r[0] for r in _records(log)] == [1, 2]

    def test_prune_drops_fully_covered_segments(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append(1, [0])
        log.append(2, [1])
        log.rotate()
        log.append(3, [2])
        log.prune(2)
        assert len(log.segments()) == 1
        assert [r[0] for r in _records(log)] == [3]

    def test_prune_keeps_partially_covered_segments(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append(1, [0])
        log.append(2, [1])
        log.prune(1)  # seq 2 still lives in the same segment
        assert [r[0] for r in _records(log)] == [1, 2]

    def test_prune_after_reopen_requires_replay(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append(1, [0])
        log.rotate()
        log.append(2, [1])
        log.close()
        reopened = WriteAheadLog(tmp_path)
        # Unknown segment coverage: prune refuses to guess.
        assert reopened.prune(2) == 0
        replay_all(reopened)
        assert reopened.prune(1) == 1
        assert [r[0] for r in _records(WriteAheadLog(tmp_path))] == [2]

    def test_sync_mode_appends_replay(self, tmp_path):
        log = WriteAheadLog(tmp_path, sync=True)
        log.append(1, [0, 1])
        log.close()
        assert [r[0] for r in _records(WriteAheadLog(tmp_path))] == [1]
