"""End-to-end: a live index served over HTTP while it ingests."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.ingest import Compactor, LiveIndex
from repro.service.registry import IndexRegistry
from repro.service.server import UsiServer
from repro.strings.alphabet import Alphabet

from tests.ingest.test_live import ALPHABET, K, assert_matches_monolithic


def _post(url: str, path: str, payload: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture()
def served():
    live = LiveIndex(ALPHABET, k=K, seal_chars=1 << 20)
    registry = IndexRegistry(cache_size=64)
    registry.register("corpus", live)
    with UsiServer(registry, port=0) as server:
        yield server, live, registry


class TestIngestEndpoint:
    def test_appends_are_sequenced_and_queryable(self, served):
        server, live, _ = served
        docs = []
        for text in ["abab", "ba", "aab"]:
            status, body = _post(server.url, "/ingest", {"doc": text})
            assert status == 200
            docs.append((text, None))
            assert body == {"index": "corpus", "seq": len(docs)}
        status, body = _post(
            server.url, "/query", {"pattern": "ab", "count": True}
        )
        assert status == 200
        assert body["results"][0]["utility"] == pytest.approx(
            live.query("ab")
        )
        assert_matches_monolithic(live, docs)

    def test_explicit_utilities(self, served):
        server, live, _ = served
        status, body = _post(
            server.url, "/ingest", {"doc": "ab", "utilities": [2.0, 3.0]}
        )
        assert status == 200
        assert live.query("ab") == pytest.approx(5.0)

    def test_stale_cache_is_invalidated_by_ingest(self, served):
        server, live, _ = served
        _post(server.url, "/ingest", {"doc": "abab"})
        first = _post(server.url, "/query", {"pattern": "ab"})[1]
        again = _post(server.url, "/query", {"pattern": "ab"})[1]  # cached
        assert again == first
        _post(server.url, "/ingest", {"doc": "ab"})
        status, body = _post(server.url, "/query", {"pattern": "ab"})
        assert body["results"][0]["utility"] == pytest.approx(
            first["results"][0]["utility"] + 2.0
        )

    @pytest.mark.parametrize(
        "payload",
        [
            {},                                   # no doc
            {"doc": ""},                          # empty doc
            {"doc": 7},                           # non-string doc
            {"doc": "ab", "utilities": [1.0]},    # wrong utilities length
            {"doc": "ab", "utilities": "xx"},     # non-list utilities
            {"doc": "ab", "utilities": [1, True]},  # boolean smuggling
            {"doc": "xyz"},                       # letters outside alphabet
        ],
    )
    def test_bad_ingest_requests_400(self, served, payload):
        server, _, _ = served
        status, body = _post(server.url, "/ingest", payload)
        assert status == 400
        assert "error" in body

    def test_unknown_index_404(self, served):
        server, _, _ = served
        status, body = _post(
            server.url, "/ingest", {"doc": "ab", "index": "ghost"}
        )
        assert status == 404
        assert "ghost" in body["error"]

    def test_stats_carry_the_ingest_section(self, served):
        server, _, _ = served
        _post(server.url, "/ingest", {"doc": "abab"})
        status, body = _get(server.url, "/stats")
        assert status == 200
        section = body["ingest"]["corpus"]
        assert section["last_seq"] == 1
        assert section["generation"] == 1
        assert section["memtable"]["documents"] == 1
        assert body["engines"]["corpus"]["data_version"] >= 0

    def test_indexes_listing_reports_generation(self, served):
        server, _, _ = served
        status, body = _get(server.url, "/indexes")
        row = body["indexes"][0]
        assert row["generation"] == 1
        assert row["capabilities"]["dynamic"] is True


class TestServeDuringCompaction:
    def test_queries_stay_exact_across_generations(self, served):
        server, live, registry = served
        compactor = Compactor(live, registry=registry, name="corpus",
                              index=live)
        docs = []
        for i, text in enumerate(["abab", "bba", "ab", "aabba", "b"]):
            _post(server.url, "/ingest", {"doc": text})
            docs.append((text, None))
            if i % 2 == 1:
                assert compactor.run_once(force=True)
                # Served answers equal a monolithic rebuild right
                # after the hot swap, through the *new* engine.
                status, body = _post(
                    server.url, "/query", {"pattern": "ab", "count": True}
                )
                assert status == 200
                assert body["results"][0]["utility"] == pytest.approx(
                    live.query("ab")
                )
        assert live.generation >= 3
        assert_matches_monolithic(live, docs)
        status, body = _get(server.url, "/stats")
        assert body["ingest"]["corpus"]["compactions"] == 2
        assert body["registry"]["replacements"] == 2
        listing = _get(server.url, "/indexes")[1]["indexes"][0]
        assert listing["generation"] == 3
