"""Exactness of the live index: delta + shards == monolithic rebuild.

The core contract of the ingest subsystem: at *every* point of any
interleaving of appends, seals, shard builds, and installs, a
:class:`LiveIndex` answers exactly like a from-scratch monolithic
``repro.build`` over the documents appended so far — including
mid-compaction snapshots where part of the corpus lives in a frozen
memtable and part in cold shards.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.ingest import LiveIndex
from repro.strings.alphabet import Alphabet
from repro.strings.collection import WeightedStringCollection
from repro.strings.weighted import WeightedString

ALPHABET = Alphabet("ab")
K = 8

#: Every answer-bearing probe for tiny ab-corpora, plus misses and a
#: foreign-letter pattern (must be the aggregator identity, not an error).
PATTERNS = ["a", "b", "aa", "ab", "ba", "bb", "aba", "bab", "aabb", "abab", "z"]


def monolithic(docs, aggregator="sum"):
    """A from-scratch collection index over the non-empty documents."""
    weighted = [
        WeightedString(text, utilities, ALPHABET)
        if utilities is not None
        else WeightedString.uniform(text, alphabet=ALPHABET)
        for text, utilities in docs
        if text
    ]
    if not weighted:
        return None
    return repro.build(
        WeightedStringCollection(weighted), backend="collection",
        k=K, aggregator=aggregator,
    )


def assert_matches_monolithic(live, docs, aggregator="sum"):
    reference = monolithic(docs, aggregator)
    identity = 0.0  # the repo-wide no-occurrence answer, every aggregator
    for pattern in PATTERNS:
        got = live.query(pattern)
        if reference is None:
            assert got == identity, pattern
            assert live.count(pattern) == 0
        else:
            assert got == pytest.approx(
                reference.query(pattern), abs=1e-9
            ), pattern
            assert live.count(pattern) == reference.count(pattern), pattern
    batch = live.query_batch(PATTERNS)
    assert batch == pytest.approx(
        [live.query(p) for p in PATTERNS], abs=1e-9
    )


@st.composite
def schedules(draw):
    """Documents with optional utilities + a post-append action each.

    Actions: 0 = nothing, 1 = full compaction, 2 = seal only (leaves a
    frozen memtable serving), 3 = install the oldest pending seal.
    """
    count = draw(st.integers(1, 8))
    docs = []
    actions = []
    for _ in range(count):
        text = draw(st.text(alphabet="ab", max_size=6))
        if text and draw(st.booleans()):
            utilities = draw(
                st.lists(
                    st.floats(min_value=0.25, max_value=4.0,
                              allow_nan=False, width=32),
                    min_size=len(text), max_size=len(text),
                )
            )
        else:
            utilities = None
        docs.append((text, utilities))
        actions.append(draw(st.integers(0, 3)))
    return docs, actions


class TestInterleavedSchedules:
    @given(schedules())
    @settings(max_examples=30, deadline=None)
    def test_every_snapshot_matches_a_monolithic_rebuild(self, schedule):
        docs, actions = schedule
        live = LiveIndex(ALPHABET, k=K, seal_chars=1 << 20)
        pending = []
        appended = []
        for (text, utilities), action in zip(docs, actions):
            live.append_document(text, utilities)
            appended.append((text, utilities))
            if action == 1:
                live.compact()
            elif action == 2:
                sealed = live.seal()
                if sealed is not None:
                    pending.append(sealed)
            elif action == 3 and pending:
                sealed = pending.pop(0)
                live.install_shard(sealed, live.build_shard(sealed))
            assert_matches_monolithic(live, appended)
        # Drain: install everything still frozen, answers still equal.
        for sealed in pending:
            live.install_shard(sealed, live.build_shard(sealed))
        assert_matches_monolithic(live, appended)

    @given(schedules(), st.sampled_from(["min", "max", "avg"]))
    @settings(max_examples=15, deadline=None)
    def test_non_sum_aggregators_merge_exactly(self, schedule, aggregator):
        docs, actions = schedule
        live = LiveIndex(ALPHABET, k=K, aggregator=aggregator,
                         seal_chars=1 << 20)
        appended = []
        for (text, utilities), action in zip(docs, actions):
            live.append_document(text, utilities)
            appended.append((text, utilities))
            if action in (1, 3):
                live.compact()
        assert_matches_monolithic(live, appended, aggregator)


class TestMidCompactionSnapshots:
    def test_frozen_memtable_serves_until_install(self):
        docs = [("abab", None), ("ba", [2.0, 0.5]), ("aabb", None)]
        live = LiveIndex(ALPHABET, k=K, seal_chars=1 << 20)
        for text, utilities in docs:
            live.append_document(text, utilities)
        sealed = live.seal()
        assert sealed is not None
        # Snapshot 1: everything frozen, nothing cold yet.
        assert_matches_monolithic(live, docs)
        shard = live.build_shard(sealed)
        # Snapshot 2: the shard exists but is not yet installed.
        assert_matches_monolithic(live, docs)
        # Appends straddle the in-flight compaction.
        live.append_document("bba")
        docs.append(("bba", None))
        assert_matches_monolithic(live, docs)
        live.install_shard(sealed, shard)
        assert live.shard_count == 1
        assert_matches_monolithic(live, docs)

    def test_multiple_frozen_memtables_stack(self):
        live = LiveIndex(ALPHABET, k=K, seal_chars=1 << 20)
        docs = []
        pending = []
        for text in ["ab", "ba", "aab"]:
            live.append_document(text)
            docs.append((text, None))
            pending.append(live.seal())
        assert_matches_monolithic(live, docs)
        # Install out of order: answers depend only on the multiset.
        for sealed in reversed(pending):
            live.install_shard(sealed, live.build_shard(sealed))
            assert_matches_monolithic(live, docs)
        assert live.shard_count == 3

    def test_compaction_does_not_bump_data_version(self):
        live = LiveIndex(ALPHABET, k=K, seal_chars=1 << 20)
        live.append_document("abab")
        before = live.data_version()
        assert live.compact() is True
        assert live.data_version() == before
        assert live.generation == 2
        live.append_document("b")
        assert live.data_version() == before + 1


class TestEdgeDocuments:
    def test_empty_documents_are_recorded_but_answer_nothing(self):
        live = LiveIndex(ALPHABET, k=K, seal_chars=1 << 20)
        assert live.append_document("") == 1
        assert live.append_document("ab") == 2
        assert live.append_document("") == 3
        assert_matches_monolithic(live, [("ab", None)])
        assert live.last_seq == 3

    def test_all_empty_corpus_compacts_to_no_shard(self):
        live = LiveIndex(ALPHABET, k=K, seal_chars=1 << 20)
        live.append_document("")
        live.append_document("")
        assert live.compact() is True  # the seal moved sequence state
        assert live.shard_count == 0
        assert_matches_monolithic(live, [("", None)])

    def test_single_character_documents(self):
        live = LiveIndex(ALPHABET, k=K, seal_chars=1 << 20)
        docs = []
        for i, ch in enumerate("ababa"):
            live.append_document(ch, [float(i + 1)])
            docs.append((ch, [float(i + 1)]))
            if i == 2:
                live.compact()
        assert_matches_monolithic(live, docs)
        # No cross-document phantom matches: "ab" never occurs.
        assert live.query("ab") == 0.0
        assert live.count("ab") == 0

    def test_appends_straddling_a_compaction(self):
        live = LiveIndex(ALPHABET, k=K, seal_chars=1 << 20)
        docs = []
        for round_docs in (["abba", "ab"], ["bab"], ["aabba", "b"]):
            for text in round_docs:
                live.append_document(text)
                docs.append((text, None))
            live.compact()
            assert_matches_monolithic(live, docs)
        assert live.shard_count == 3
        assert live.ingest_stats()["compactions"] == 3

    def test_foreign_letters_are_rejected_on_append(self):
        live = LiveIndex(ALPHABET, k=K)
        with pytest.raises(repro.ReproError):
            live.append_document("xyz")
        with pytest.raises(repro.ReproError):
            live.append_document("ab", [1.0])  # wrong utilities length

    def test_seal_threshold_drives_should_seal(self):
        live = LiveIndex(ALPHABET, k=K, seal_chars=4)
        assert not live.should_seal()
        live.append_document("ab")
        assert not live.should_seal()
        live.append_document("ba")
        assert live.should_seal()
        live.compact()
        assert not live.should_seal()


class TestPickle:
    def test_unpickled_copy_answers_identically(self):
        import pickle

        live = LiveIndex(ALPHABET, k=K, seal_chars=1 << 20)
        docs = [("abab", None), ("ba", [2.0, 0.5])]
        for text, utilities in docs:
            live.append_document(text, utilities)
        live.compact()
        live.append_document("aab")
        docs.append(("aab", None))
        clone = pickle.loads(pickle.dumps(live))
        assert_matches_monolithic(clone, docs)
        assert clone.directory is None  # durable attachments do not travel
