"""Durability: the v4 dynamic checkpoint + WAL recovery chain.

Covers the ``repro.io`` satellite (checkpoint/restore of a
:class:`DynamicUsiIndex` dispatched by header) and the full
``LiveIndex.open`` recovery matrix: WAL-only, checkpoint + WAL tail,
stale checkpoint after compaction, and crash points between the
install steps.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.dynamic import DynamicUsiIndex
from repro.ingest import LiveIndex
from repro.io import (
    load_any,
    load_dynamic_index,
    peek_backend,
    save_dynamic_index,
    save_index,
)
from repro.strings.alphabet import Alphabet
from repro.strings.weighted import WeightedString

from tests.ingest.test_live import ALPHABET, K, assert_matches_monolithic

PATTERNS = ["A", "AB", "BA", "ABAB", "BB", "Z"]


class TestDynamicCheckpointFormat:
    def build(self):
        ws = WeightedString("ABABBA", [1, 2, 1, 0.5, 1, 2])
        index = DynamicUsiIndex(ws, k=6)
        index.append("B", 1.5)
        index.append("A", 0.25)
        return index

    def test_save_load_roundtrip_preserves_answers(self, tmp_path):
        index = self.build()
        path = tmp_path / "dyn.npz"
        save_dynamic_index(index, path)
        restored, extra = load_dynamic_index(path)
        assert extra is None
        assert isinstance(restored, DynamicUsiIndex)
        for pattern in PATTERNS:
            assert restored.query(pattern) == pytest.approx(
                index.query(pattern), abs=1e-9
            ), pattern
            assert restored.count(pattern) == index.count(pattern)
        # The restored tail keeps appending like the original.
        index.append("B", 3.0)
        restored.append("B", 3.0)
        assert restored.query("AB") == pytest.approx(index.query("AB"))

    def test_extra_metadata_rides_the_header(self, tmp_path):
        path = tmp_path / "dyn.npz"
        save_dynamic_index(self.build(), path, extra={"first_seq": 3,
                                                     "last_seq": 9})
        _, extra = load_dynamic_index(path)
        assert extra == {"first_seq": 3, "last_seq": 9}

    def test_save_index_dispatches_dynamic_engines(self, tmp_path):
        index = self.build()
        path = tmp_path / "dyn.npz"
        save_index(index, path)  # the generic entry point, not _v2 pickle
        assert peek_backend(path) == "dynamic"
        restored, backend = load_any(path)
        assert backend == "dynamic"
        assert isinstance(restored, DynamicUsiIndex)
        assert restored.query("ABAB") == pytest.approx(index.query("ABAB"))

    def test_repro_open_serves_a_checkpoint(self, tmp_path):
        index = self.build()
        path = tmp_path / "dyn.npz"
        save_index(index, path)
        reopened = repro.open(path)
        assert reopened.backend_name == "dynamic"
        assert reopened.query("ABAB") == pytest.approx(index.query("ABAB"))


def drain_and_reopen(live, directory):
    """Simulate a crash: drop the handle, recover from disk."""
    live.close()
    return LiveIndex.open(directory)


class TestLiveRecovery:
    def seed(self, tmp_path, **options):
        options.setdefault("k", K)
        options.setdefault("seal_chars", 1 << 20)
        return LiveIndex.create(tmp_path / "live", ALPHABET, **options)

    def test_wal_only_recovery(self, tmp_path):
        live = self.seed(tmp_path)
        docs = [("abab", None), ("", None), ("b", [2.0]), ("aab", None)]
        for text, utilities in docs:
            live.append_document(text, utilities)
        recovered = drain_and_reopen(live, tmp_path / "live")
        assert recovered.last_seq == 4
        assert_matches_monolithic(recovered, docs)

    def test_checkpoint_plus_wal_tail(self, tmp_path):
        live = self.seed(tmp_path)
        docs = [("abba", None), ("ab", None)]
        for text, _ in docs:
            live.append_document(text)
        assert live.checkpoint() is not None
        live.append_document("bb")  # after the checkpoint: WAL replays it
        docs.append(("bb", None))
        recovered = drain_and_reopen(live, tmp_path / "live")
        assert recovered.last_seq == 3
        assert_matches_monolithic(recovered, docs)

    def test_stale_checkpoint_is_ignored_after_compaction(self, tmp_path):
        live = self.seed(tmp_path)
        live.append_document("abab")
        live.checkpoint()
        live.compact()  # the checkpointed range is now covered by a shard
        live.append_document("ba")
        docs = [("abab", None), ("ba", None)]
        recovered = drain_and_reopen(live, tmp_path / "live")
        assert recovered.shard_count == 1
        assert recovered.last_seq == 2
        assert_matches_monolithic(recovered, docs)

    def test_recovery_straddles_generations(self, tmp_path):
        live = self.seed(tmp_path)
        docs = []
        for text in ["abba", "ab"]:
            live.append_document(text)
            docs.append((text, None))
        live.compact()
        for text in ["bab", ""]:
            live.append_document(text)
            docs.append((text, None))
        live.checkpoint()
        live.append_document("aa")
        docs.append(("aa", None))
        recovered = drain_and_reopen(live, tmp_path / "live")
        assert recovered.last_seq == 5
        assert recovered.shard_count == 1
        assert_matches_monolithic(recovered, docs)
        # The recovered index keeps ingesting with continuous sequences.
        assert recovered.append_document("b") == 6

    def test_wal_pruned_after_install(self, tmp_path):
        live = self.seed(tmp_path)
        live.append_document("abab")
        live.compact()
        assert live.ingest_stats()["wal_segments"] == 0
        live.append_document("ba")
        recovered = drain_and_reopen(live, tmp_path / "live")
        assert_matches_monolithic(
            recovered, [("abab", None), ("ba", None)]
        )

    def test_crash_before_manifest_replays_from_wal(self, tmp_path):
        """Shard built + WAL intact, manifest never updated: the WAL
        still holds every document, so recovery reaches the same
        answers with zero shards."""
        live = self.seed(tmp_path)
        docs = [("abba", None), ("ab", None)]
        for text, _ in docs:
            live.append_document(text)
        sealed = live.seal()
        live.build_shard(sealed)  # crash: shard never installed
        live.close()
        recovered = LiveIndex.open(tmp_path / "live")
        assert recovered.shard_count == 0
        assert_matches_monolithic(recovered, docs)

    def test_reopen_reuses_manifest_parameters(self, tmp_path):
        live = LiveIndex.create(
            tmp_path / "live", Alphabet("ab"), k=5, aggregator="max",
            seal_chars=128,
        )
        live.append_document("abab")
        recovered = drain_and_reopen(live, tmp_path / "live")
        assert recovered.k == 5
        assert recovered.utility_name == "max"
        assert recovered.alphabet.size == 2

    def test_create_refuses_an_existing_index(self, tmp_path):
        self.seed(tmp_path)
        with pytest.raises(repro.ReproError, match="already holds"):
            LiveIndex.create(tmp_path / "live", ALPHABET, k=K)

    def test_open_requires_a_manifest(self, tmp_path):
        with pytest.raises(repro.ReproError, match="manifest"):
            LiveIndex.open(tmp_path / "nowhere")
