"""Tests for the `usi` command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def corpus(tmp_path):
    text_path = tmp_path / "corpus.txt"
    text_path.write_text("ABRACADABRAABRACADABRA\n")
    utilities_path = tmp_path / "weights.txt"
    utilities_path.write_text("\n".join(["1.0"] * 22) + "\n")
    return text_path, utilities_path


class TestTopK:
    def test_lists_k_rows(self, corpus, capsys):
        text_path, _ = corpus
        assert main(["topk", "--text", str(text_path), "--k", "5"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5
        freq, length, substring = lines[0].split("\t")
        assert int(freq) >= int(lines[-1].split("\t")[0])

    def test_with_utilities(self, corpus, capsys):
        text_path, utilities_path = corpus
        code = main([
            "topk", "--text", str(text_path),
            "--utilities", str(utilities_path), "--k", "3",
        ])
        assert code == 0


class TestBuildAndQuery:
    def test_roundtrip(self, corpus, tmp_path, capsys):
        text_path, utilities_path = corpus
        out = tmp_path / "index.pkl"
        assert main([
            "build", "--text", str(text_path),
            "--utilities", str(utilities_path),
            "--k", "10", "--out", str(out),
        ]) == 0
        assert out.exists()
        assert main([
            "query", "--index", str(out),
            "--pattern", "ABRA", "--pattern", "ZZZ",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        last_two = lines[-2:]
        assert last_two[0].startswith("ABRA\t")
        # ABRA occurs 4 times, each of local utility 4 -> 16.
        assert float(last_two[0].split("\t")[1]) == pytest.approx(16.0)
        assert float(last_two[1].split("\t")[1]) == 0.0

    def test_build_approximate(self, corpus, tmp_path):
        text_path, _ = corpus
        out = tmp_path / "uat.pkl"
        assert main([
            "build", "--text", str(text_path),
            "--k", "5", "--approximate", "--out", str(out),
        ]) == 0
        assert out.exists()


class TestMine:
    def test_top_mode(self, corpus, capsys):
        text_path, utilities_path = corpus
        assert main([
            "mine", "--text", str(text_path),
            "--utilities", str(utilities_path), "--top", "5",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5
        utilities = [float(line.split("\t")[0]) for line in lines]
        assert utilities == sorted(utilities, reverse=True)

    def test_threshold_mode(self, corpus, capsys):
        text_path, _ = corpus
        assert main([
            "mine", "--text", str(text_path),
            "--threshold", "10", "--min-length", "2",
        ]) == 0
        for line in capsys.readouterr().out.strip().splitlines():
            assert float(line.split("\t")[0]) >= 10.0

    def test_threshold_with_top_cap(self, corpus, capsys):
        text_path, _ = corpus
        assert main([
            "mine", "--text", str(text_path),
            "--threshold", "1", "--top", "3",
        ]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 3


class TestTune:
    def test_by_k(self, corpus, capsys):
        text_path, _ = corpus
        assert main(["tune", "--text", str(text_path), "--k", "5"]) == 0
        assert "tau_K=" in capsys.readouterr().out

    def test_by_tau(self, corpus, capsys):
        text_path, _ = corpus
        assert main(["tune", "--text", str(text_path), "--tau", "2"]) == 0
        assert "K_tau=" in capsys.readouterr().out

    def test_requires_one_of(self, corpus):
        text_path, _ = corpus
        assert main(["tune", "--text", str(text_path)]) == 2
        assert main(["tune", "--text", str(text_path), "--k", "2", "--tau", "2"]) == 2

    def test_curve(self, corpus, capsys):
        text_path, _ = corpus
        assert main(["tune", "--text", str(text_path), "--curve"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("K\t")
        assert len(lines) >= 2
        taus = [int(line.split("\t")[1]) for line in lines[1:]]
        assert taus == sorted(taus, reverse=True)


class TestQueryInputSources:
    @pytest.fixture()
    def index_path(self, corpus, tmp_path):
        text_path, _ = corpus
        out = tmp_path / "index.npz"
        assert main(["build", "--text", str(text_path), "--k", "10",
                     "--out", str(out)]) == 0
        return out

    def test_patterns_file(self, index_path, tmp_path, capsys):
        patterns = tmp_path / "patterns.txt"
        patterns.write_text("ABRA\nZZZ\n")
        assert main(["query", "--index", str(index_path),
                     "--patterns-file", str(patterns)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "ABRA\t16.0"
        assert lines[1] == "ZZZ\t0.0"

    def test_stdin(self, index_path, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("ABRA\nCAD\n"))
        assert main(["query", "--index", str(index_path)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("ABRA\t")
        assert lines[1].startswith("CAD\t")

    def test_no_patterns_is_an_error(self, index_path, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(["query", "--index", str(index_path)]) == 2

    def test_flags_and_file_combine(self, index_path, tmp_path, capsys):
        patterns = tmp_path / "patterns.txt"
        patterns.write_text("CAD\n")
        assert main(["query", "--index", str(index_path),
                     "--pattern", "ABRA",
                     "--patterns-file", str(patterns)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2


class TestCrlfCorpora:
    def test_crlf_text_does_not_poison_alphabet(self, tmp_path, capsys):
        text_path = tmp_path / "crlf.txt"
        text_path.write_bytes(b"ABRACADABRAABRACADABRA\r\n")
        out = tmp_path / "index.npz"
        assert main(["build", "--text", str(text_path), "--k", "10",
                     "--out", str(out)]) == 0
        assert main(["query", "--index", str(out), "--pattern", "ABRA"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[-1] == "ABRA\t16.0"


class TestShardedBuild:
    def test_build_and_query_sharded(self, tmp_path, capsys):
        text_path = tmp_path / "lines.txt"
        text_path.write_text("ABRA\nCADABRA\nABRACADABRA\n")
        out = tmp_path / "sharded.pkl"
        assert main(["build", "--text", str(text_path), "--shards", "2",
                     "--k", "5", "--out", str(out)]) == 0
        assert "shards=2" in capsys.readouterr().out
        assert main(["query", "--index", str(out), "--pattern", "ABRA"]) == 0
        assert capsys.readouterr().out.strip() == "ABRA\t16.0"

    def test_sharded_npz_is_rejected(self, tmp_path):
        text_path = tmp_path / "lines.txt"
        text_path.write_text("ABRA\nCADABRA\n")
        with pytest.raises(SystemExit):
            main(["build", "--text", str(text_path), "--shards", "2",
                  "--k", "5", "--out", str(tmp_path / "sharded.npz")])


class TestServeParser:
    def test_serve_end_to_end(self, corpus, tmp_path):
        """Drive `usi serve` through its components on an ephemeral port."""
        import json
        import threading
        import urllib.request

        from repro.service.registry import IndexRegistry
        from repro.service.server import UsiServer

        text_path, _ = corpus
        out = tmp_path / "abra.npz"
        assert main(["build", "--text", str(text_path), "--k", "10",
                     "--out", str(out)]) == 0
        registry = IndexRegistry()
        registry.register_path("abra", out)
        with UsiServer(registry, port=0) as server:
            request = urllib.request.Request(
                server.url + "/query",
                data=json.dumps({"pattern": "ABRA"}).encode(),
            )
            body = json.loads(urllib.request.urlopen(request, timeout=10).read())
        assert body["results"][0]["utility"] == 16.0
        assert threading.active_count() >= 1


class TestScenarios:
    def test_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "pathological" in out
        assert "read_collection" in out
        assert "cache_hostile" in out

    def test_describe(self, capsys):
        assert main(["scenarios", "describe", "dna_quality"]) == 0
        out = capsys.readouterr().out
        assert "pinned baseline:" in out
        assert "answers_sum" in out
        assert "workloads:" in out

    def test_describe_unknown_is_an_error(self, capsys):
        assert main(["scenarios", "describe", "nope"]) == 2
        assert "registered" in capsys.readouterr().err

    def test_run_requires_a_selection(self, capsys):
        assert main(["scenarios", "run"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_run_small_matrix(self, tmp_path, capsys):
        import json

        payload_path = tmp_path / "matrix.json"
        assert main([
            "scenarios", "run", "--scenario", "pathological",
            "--workload", "w1", "--workload", "cache_hostile",
            "--n", "600", "--queries", "8", "--json", str(payload_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "scenario matrix ok" in out
        assert "0 mismatches" in out
        payload = json.loads(payload_path.read_text())
        assert payload["mismatches"] == []
        assert {row["workload"] for row in payload["rows"]} == {
            "w1", "cache_hostile"
        }
