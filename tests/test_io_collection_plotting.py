"""Tests for persistence, collections, product utilities, and charts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import naive_global_utility
from repro.core.usi import UsiIndex
from repro.errors import ParameterError, WeightedStringError
from repro.eval.plotting import ascii_chart
from repro.io import load_index, save_index
from repro.strings.alphabet import Alphabet
from repro.strings.collection import CollectionUsiIndex, WeightedStringCollection
from repro.strings.weighted import WeightedString
from repro.utility.functions import ProductLocalUtility, make_local_utility


class TestSaveLoad:
    def test_roundtrip_queries(self, paper_example, tmp_path):
        index = UsiIndex.build(paper_example, k=8)
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        for pattern in ("TACCCC", "A", "GGGG", "ATAC", "XYZ"):
            assert loaded.query(pattern) == pytest.approx(index.query(pattern))

    def test_roundtrip_preserves_report(self, paper_example, tmp_path):
        index = UsiIndex.build(paper_example, k=8)
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.report.k == index.report.k
        assert loaded.report.tau_k == index.report.tau_k
        assert loaded.hash_table_size == index.hash_table_size

    def test_roundtrip_product_local(self, tmp_path):
        ws = WeightedString("ACGTACGT", [0.9, 0.8, 0.99, 0.7, 0.9, 0.8, 0.99, 0.7])
        index = UsiIndex.build(ws, k=5, local="product", aggregator="sum")
        path = tmp_path / "product.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.query("ACG") == pytest.approx(index.query("ACG"))

    def test_integer_alphabet_roundtrip(self, tmp_path):
        ws = WeightedString(np.asarray([0, 3, 1, 3, 0], dtype=np.int32),
                            [1.0, 2.0, 3.0, 4.0, 5.0])
        index = UsiIndex.build(ws, k=3)
        path = tmp_path / "ints.npz"
        save_index(index, path)
        loaded = load_index(path)
        pattern = np.asarray([3], dtype=np.int64)
        assert loaded.query(pattern) == pytest.approx(index.query(pattern))

    def test_fm_backend_rejected(self, paper_example, tmp_path):
        index = UsiIndex.build(paper_example, k=4, locate_backend="fm")
        with pytest.raises(ParameterError):
            save_index(index, tmp_path / "fm.npz")

    def test_bad_version_rejected(self, paper_example, tmp_path):
        import json

        index = UsiIndex.build(paper_example, k=4)
        path = tmp_path / "index.npz"
        save_index(index, path)
        with np.load(path) as archive:
            contents = dict(archive)
        header = json.loads(bytes(contents["header"].tobytes()).decode())
        header["format_version"] = 999
        contents["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(path, **contents)
        with pytest.raises(ParameterError):
            load_index(path)


from tests.conftest import weighted_strings as _ws_strategy


class TestSaveLoadProperty:
    @given(ws=_ws_strategy(max_size=25), k=st.integers(1, 10))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, ws, k, tmp_path_factory):
        index = UsiIndex.build(ws, k=k)
        path = tmp_path_factory.mktemp("io") / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        text = ws.text()
        for pattern in {text[:1], text[:3] or text[:1], text[-2:] or text[-1:]}:
            assert loaded.query(pattern) == pytest.approx(
                index.query(pattern), abs=1e-9
            )
        assert loaded.hash_table_size == index.hash_table_size


class TestProductLocalUtility:
    def test_matches_direct_product(self):
        w = [0.9, 0.5, 0.8, 1.2]
        product = ProductLocalUtility(w)
        for i in range(4):
            for length in range(1, 4 - i + 1):
                assert product.local_utility(i, length) == pytest.approx(
                    float(np.prod(w[i : i + length]))
                )

    def test_vectorised(self):
        w = [0.9, 0.5, 0.8, 1.2, 0.4]
        product = ProductLocalUtility(w)
        values = product.local_utilities(np.asarray([0, 2]), 2)
        np.testing.assert_allclose(values, [0.45, 0.96])

    def test_requires_positive(self):
        with pytest.raises(ParameterError):
            ProductLocalUtility([0.5, 0.0])
        with pytest.raises(ParameterError):
            ProductLocalUtility([-1.0])

    def test_usi_expected_frequency(self):
        """'Sum of products' == expected frequency with probabilities."""
        ws = WeightedString("ACACAC", [0.9, 0.5, 0.9, 0.5, 0.9, 0.5])
        index = UsiIndex.build(ws, k=4, local="product")
        # occ(AC) at 0, 2, 4 each with product 0.45.
        assert index.query("AC") == pytest.approx(3 * 0.45)
        assert index.query("AC") == pytest.approx(
            naive_global_utility(ws, "AC", "sum", "product")
        )

    def test_make_local_utility_tags_name(self):
        instance = make_local_utility("product", [0.5])
        assert instance.local_name == "product"
        with pytest.raises(ParameterError):
            make_local_utility("median", [0.5])


class TestCollections:
    def _docs(self):
        alpha = Alphabet.dna()
        return [
            WeightedString("ACGT", [1, 2, 3, 4], alpha),
            WeightedString("CGTACG", [1, 1, 1, 1, 1, 1], alpha),
            WeightedString("TTTT", [0.5, 0.5, 0.5, 0.5], alpha),
        ]

    def test_requires_documents(self):
        with pytest.raises(ParameterError):
            WeightedStringCollection([])

    def test_requires_shared_alphabet(self):
        with pytest.raises(WeightedStringError):
            WeightedStringCollection(
                [WeightedString("AB", [1, 1]), WeightedString("CD", [1, 1])]
            )

    def test_combined_length(self):
        collection = WeightedStringCollection(self._docs())
        # 4 + 6 + 4 letters + 2 separators.
        assert collection.combined.length == 16
        assert collection.document_count == 3

    def test_document_of(self):
        collection = WeightedStringCollection(self._docs())
        assert collection.document_of(0) == 0
        assert collection.document_of(5) == 1
        assert collection.document_of(15) == 2
        with pytest.raises(ParameterError):
            collection.document_of(99)

    def test_query_is_sum_of_documents(self):
        docs = self._docs()
        index = CollectionUsiIndex(WeightedStringCollection(docs), k=6)
        for pattern in ("CG", "T", "ACG", "GTA", "AAAA"):
            want = sum(naive_global_utility(d, pattern) for d in docs)
            assert index.query(pattern) == pytest.approx(want), pattern

    def test_pattern_never_spans_documents(self):
        docs = [
            WeightedString("AB", [1, 1], Alphabet("AB")),
            WeightedString("BA", [1, 1], Alphabet("AB")),
        ]
        index = CollectionUsiIndex(WeightedStringCollection(docs), k=4)
        # "BB" would only occur across the boundary: must not match.
        assert index.count("BB") == 0
        assert index.query("BB") == 0.0

    def test_document_frequency(self):
        docs = self._docs()
        index = CollectionUsiIndex(WeightedStringCollection(docs), k=6)
        assert index.document_frequency("CG") == 2
        assert index.document_frequency("TTT") == 1
        assert index.document_frequency("AAAA") == 0
        assert index.document_frequency("QQ") == 0

    def test_unknown_letters_are_identity(self):
        index = CollectionUsiIndex(WeightedStringCollection(self._docs()), k=3)
        assert index.query("XYZ") == 0.0


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            {"AT": [(1, 10), (2, 20)], "TT": [(1, 5), (2, 2)]},
            width=20, height=6, title="demo",
        )
        assert "demo" in chart
        assert "o=AT" in chart and "x=TT" in chart
        assert "o" in chart and "x" in chart

    def test_axis_labels(self):
        chart = ascii_chart({"s": [(0, 0), (10, 100)]}, width=20, height=6,
                            x_label="K", y_label="acc")
        assert "100" in chart and "0" in chart
        assert "K" in chart

    def test_single_point(self):
        chart = ascii_chart({"s": [(5, 5)]}, width=10, height=5)
        assert "o" in chart

    def test_validation(self):
        with pytest.raises(ParameterError):
            ascii_chart({})
        with pytest.raises(ParameterError):
            ascii_chart({"s": []})
        with pytest.raises(ParameterError):
            ascii_chart({"s": [(1, 1)]}, width=2, height=2)

    @given(
        st.lists(
            st.tuples(st.floats(-100, 100, width=32), st.floats(-100, 100, width=32)),
            min_size=1, max_size=30,
        )
    )
    @settings(max_examples=20)
    def test_never_crashes_property(self, points):
        chart = ascii_chart({"s": points}, width=30, height=8)
        assert isinstance(chart, str)
        assert len(chart.splitlines()) >= 8


class TestLocateBackends:
    @pytest.mark.parametrize("backend", ["fm", "st"])
    def test_backend_queries_match_sa(self, paper_example, backend):
        sa_index = UsiIndex.build(paper_example, k=6)
        other = UsiIndex.build(paper_example, k=6, locate_backend=backend)
        for pattern in ("TACCCC", "A", "CCCC", "GGGG", "ATAC"):
            assert other.query(pattern) == pytest.approx(sa_index.query(pattern))

    @pytest.mark.parametrize("backend", ["fm", "st"])
    def test_backend_counts_match(self, paper_example, backend):
        sa_index = UsiIndex.build(paper_example, k=6)
        other = UsiIndex.build(paper_example, k=6, locate_backend=backend)
        for pattern in ("TACCCC", "A", "CC", "GGGG"):
            assert other.count(pattern) == sa_index.count(pattern)

    def test_unknown_backend_rejected(self, paper_example):
        with pytest.raises(ParameterError):
            UsiIndex.build(paper_example, k=3, locate_backend="bwt")

    def test_top_cached_ordering(self, paper_example):
        index = UsiIndex.build(paper_example, k=8)
        ranked = index.top_cached()
        utilities = [value for _, value in ranked]
        assert utilities == sorted(utilities, reverse=True)
        assert len(index.top_cached(3)) == min(3, len(ranked))
