"""Smoke tests for the example scripts.

``quickstart`` runs end to end (it is fast and self-asserting); every
other example is at least compiled and import-scanned so a broken API
reference in any of them fails the suite.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in ALL_EXAMPLES}
    assert {
        "quickstart.py",
        "dna_quality.py",
        "ad_sequencing.py",
        "iot_link_quality.py",
        "web_analytics.py",
        "read_collection.py",
        "section7_counterexamples.py",
        "scale_check.py",
        "serving.py",
    } <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_examples_compile(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "14.6" in result.stdout
    assert "UAT" in result.stdout


def test_read_collection_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "read_collection.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "reads" in result.stdout


# The scenario-backed examples each end by recomputing their world's
# metrics and comparing against the committed pins; "baseline: ok" is
# the contract line (a drifted generator or answer path prints
# "baseline: DRIFT" and exits non-zero instead).
SCENARIO_EXAMPLES = [
    "ad_sequencing.py",
    "dna_quality.py",
    "iot_link_quality.py",
    "read_collection.py",
    "web_analytics.py",
]


@pytest.mark.parametrize("name", SCENARIO_EXAMPLES)
def test_scenario_examples_match_pinned_baselines(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr or result.stdout
    assert "baseline: ok" in result.stdout, result.stdout
    assert "pinned answers_sum" in result.stdout


def test_serving_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "serving.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "answers equal the monolithic index" in result.stdout
    assert "server stopped." in result.stdout
