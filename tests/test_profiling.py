"""The query-path profiler: stage accounting, nesting, and rendering."""

from __future__ import annotations

import threading

import numpy as np

from repro.core.usi import UsiIndex
from repro.eval.reporting import format_query_profile
from repro.profiling import (
    STAGE_ORDER,
    QueryProfile,
    current_profile,
    merge_profile_dicts,
    profiled,
    record_stage,
    stage,
)
from repro.service.engine import QueryEngine
from repro.strings.weighted import WeightedString


class TestQueryProfile:
    def test_add_merge_account(self):
        profile = QueryProfile()
        profile.add("locate", 0.25)
        profile.add("locate", 0.25)
        profile.add("gather", 1.0)
        profile.account(100)
        other = QueryProfile()
        other.add("encode", 0.5)
        other.account(10)
        profile.merge(other)
        assert profile.stages == {"locate": 0.5, "gather": 1.0, "encode": 0.5}
        assert profile.total() == 2.0
        assert profile.patterns == 110
        assert profile.calls == 2

    def test_ordered_stages_follow_canonical_order(self):
        profile = QueryProfile()
        profile.add("gather", 1.0)
        profile.add("encode", 2.0)
        profile.add("custom", 3.0)
        profile.add("cache", 4.0)
        names = [name for name, _ in profile.ordered_stages()]
        assert names == ["encode", "cache", "gather", "custom"]
        assert list(profile.as_dict()["stages"]) == names

    def test_record_stage_without_active_profile_is_noop(self):
        assert current_profile() is None
        record_stage("locate", 1.0)  # must not raise
        with stage("gather"):
            pass

    def test_profiled_activates_and_restores(self):
        profile = QueryProfile()
        with profiled(profile):
            assert current_profile() is profile
            record_stage("locate", 0.5)
        assert current_profile() is None
        assert profile.stages == {"locate": 0.5}

    def test_nested_profiles_propagate_to_outer(self):
        outer, inner = QueryProfile(), QueryProfile()
        with profiled(outer):
            record_stage("encode", 1.0)
            with profiled(inner):
                record_stage("locate", 2.0)
        assert inner.stages == {"locate": 2.0}
        assert outer.stages == {"encode": 1.0, "locate": 2.0}

    def test_nested_no_propagate(self):
        outer, inner = QueryProfile(), QueryProfile()
        with profiled(outer):
            with profiled(inner, propagate=False):
                record_stage("locate", 2.0)
        assert outer.stages == {}

    def test_threads_are_isolated(self):
        profile = QueryProfile()
        seen: list = []

        def worker() -> None:
            seen.append(current_profile())

        with profiled(profile):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [None]


class TestMergeProfileDicts:
    def test_sums_and_orders(self):
        merged = merge_profile_dicts(
            [
                {"stages": {"gather": 1.0, "encode": 0.5}, "patterns": 5, "calls": 1},
                {"stages": {"gather": 2.0, "merge": 0.25}, "patterns": 7, "calls": 2},
                None,  # rows without a profile are skipped
            ]
        )
        assert merged["stages"] == {"encode": 0.5, "gather": 3.0, "merge": 0.25}
        assert list(merged["stages"]) == ["encode", "gather", "merge"]
        assert merged["patterns"] == 12
        assert merged["calls"] == 3

    def test_empty(self):
        assert merge_profile_dicts([]) == {"stages": {}, "patterns": 0, "calls": 0}


class TestFormatQueryProfile:
    def test_renders_stages_and_other_row(self):
        profile = QueryProfile()
        profile.add("locate", 0.010)
        profile.add("gather", 0.030)
        profile.account(1000)
        text = format_query_profile(profile, wall_seconds=0.050)
        assert "locate" in text and "gather" in text
        assert "other" in text  # wall minus accounted
        assert "1000 patterns in 1 calls" in text
        assert "patterns/s" in text

    def test_renders_without_wall(self):
        profile = QueryProfile()
        profile.add("encode", 0.002)
        text = format_query_profile(profile)
        assert "encode" in text
        assert "other" not in text


class TestEndToEnd:
    def _index(self) -> UsiIndex:
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 4, size=800, dtype=np.int32)
        utilities = rng.integers(0, 8, size=800) * 0.25
        return UsiIndex.build(WeightedString(codes, utilities), k=10)

    def test_query_batch_records_pipeline_stages(self):
        index = self._index()
        patterns = [np.asarray(p, dtype=np.int64) for p in ([0, 1], [1, 2, 3], [2])]
        profile = QueryProfile()
        with profiled(profile):
            index.query_batch(patterns)
        assert set(profile.stages) >= {"encode", "cache"}
        # At least one pattern misses the tiny top-K table, so the
        # locate + gather stages of the fused path ran too.
        assert "locate" in profile.stages
        assert all(v >= 0.0 for v in profile.stages.values())

    def test_engine_accumulates_profile_in_stats(self):
        engine = QueryEngine(self._index(), cache_size=16)
        patterns = [np.asarray([0, 1], dtype=np.int64), np.asarray([2], dtype=np.int64)]
        engine.query_batch(patterns)
        engine.query_batch(patterns)  # second call: all cache hits
        snapshot = engine.stats()["profile"]
        assert snapshot["calls"] == 2
        assert snapshot["patterns"] == 4
        assert "cache" in snapshot["stages"]
        known = set(STAGE_ORDER)
        assert set(snapshot["stages"]) <= known | {"other"}
