"""Protocol-conformance suite: every registered backend, one contract.

For each backend in the registry: build over a small weighted string
through ``repro.build``, answer queries (checked against
``naive_global_utility``), batch-query, save, reopen through
``repro.open``, and serve.  A new backend only has to register its
adapter to be covered.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import WeightedString
from repro.api import (
    UtilityIndexBase,
    as_index,
    available_backends,
    backend_aliases,
    get_backend,
    resolve_backend_name,
)
from repro.core.naive import naive_global_utility
from repro.errors import ParameterError

PATTERNS = ["TACCCC", "A", "TA", "CCCC", "ATAC", "GGGG", "XYZ"]

#: Build options keeping every backend cheap and deterministic.
BUILD_OPTS = {
    "sharded": {"parallel": "serial"},
    "uat": {"s": 3},
}


@pytest.fixture(scope="module")
def ws() -> WeightedString:
    return WeightedString(
        "ATACCCCGATAATACCCCAG",
        [0.9, 1, 3, 2, 0.7, 1, 1, 0.6, 0.5, 0.5,
         0.5, 0.8, 1, 1, 1, 0.9, 1, 1, 0.8, 1],
    )


@pytest.fixture(scope="module")
def built(ws) -> dict[str, UtilityIndexBase]:
    return {
        name: repro.build(ws, k=5, backend=name, **BUILD_OPTS.get(name, {}))
        for name in available_backends()
    }


@pytest.mark.parametrize("backend", sorted(set(available_backends())))
class TestEveryBackend:
    def test_query_matches_naive(self, built, ws, backend):
        index = built[backend]
        for pattern in PATTERNS:
            assert index.query(pattern) == pytest.approx(
                naive_global_utility(ws, pattern), abs=1e-9
            ), (backend, pattern)

    def test_query_batch_matches_query(self, built, backend):
        index = built[backend]
        batch = index.query_batch(PATTERNS)
        assert batch == pytest.approx([index.query(p) for p in PATTERNS])

    def test_count_is_exact(self, built, ws, backend):
        index = built[backend]
        if not index.capabilities.count:
            pytest.skip(f"{backend} does not count")
        text = ws.text()
        for pattern in PATTERNS:
            expected = sum(
                text[i : i + len(pattern)] == pattern
                for i in range(len(text) - len(pattern) + 1)
            )
            assert index.count(pattern) == expected, (backend, pattern)

    def test_count_batch_matches_count(self, built, backend):
        """Bulk counts == scalar counts, native passthrough or fallback."""
        index = built[backend]
        if not index.capabilities.count:
            pytest.skip(f"{backend} does not count")
        assert index.count_batch(PATTERNS) == [
            index.count(p) for p in PATTERNS
        ], backend

    def test_stats_report_backend_and_capabilities(self, built, backend):
        info = built[backend].stats()
        assert info.backend == backend
        assert info.capabilities == get_backend(backend).capabilities
        assert isinstance(info.as_dict()["capabilities"], dict)

    def test_save_open_roundtrip(self, built, ws, backend, tmp_path):
        index = built[backend]
        path = tmp_path / f"{backend}.npz"
        repro.save_index(index, path)
        reopened = repro.open(path)
        assert reopened.backend_name == backend
        for pattern in PATTERNS:
            assert reopened.query(pattern) == pytest.approx(
                naive_global_utility(ws, pattern), abs=1e-9
            ), (backend, pattern)

    def test_reopened_index_serves(self, built, backend, tmp_path):
        from repro.service.registry import IndexRegistry

        path = tmp_path / f"{backend}.npz"
        repro.save_index(built[backend], path)
        registry = IndexRegistry()
        registry.register_path(backend, path)
        rows = {row["name"]: row for row in registry.describe()}
        assert rows[backend]["backend"] == backend  # tag visible pre-load
        engine = registry.get(backend)
        assert engine.query("TACCCC") == pytest.approx(14.6)
        assert engine.query_batch(["TACCCC", "GGGG"]) == pytest.approx([14.6, 0.0])
        assert engine.stats()["backend"] == backend


class TestRegistry:
    def test_aliases_resolve_to_canonical_backends(self):
        for alias, name in backend_aliases().items():
            assert resolve_backend_name(alias) == name
            assert get_backend(alias) is get_backend(name)

    def test_unknown_backend_is_a_clear_error(self, ws):
        with pytest.raises(ParameterError, match="unknown backend"):
            repro.build(ws, k=5, backend="no-such-engine")

    def test_expected_capability_flags(self):
        assert get_backend("dynamic").capabilities.dynamic
        assert get_backend("sharded").capabilities.collection
        assert get_backend("collection").capabilities.collection
        assert get_backend("uat").capabilities.approximate
        assert not get_backend("usi").capabilities.approximate

    def test_exact_backends_agree_everywhere(self, built):
        answers = {
            name: index.query_batch(PATTERNS) for name, index in built.items()
        }
        reference = answers["usi"]
        for name, rows in answers.items():
            assert rows == pytest.approx(reference, abs=1e-9), name


class TestCoercion:
    def test_generic_adapter_gives_batch_fallback(self):
        class Minimal:
            def query(self, pattern):
                return float(len(pattern))

        adapted = as_index(Minimal())
        assert adapted.backend_name == "external"
        assert adapted.query_batch(["ab", "abc"]) == [2.0, 3.0]

    def test_as_index_is_idempotent(self, built):
        for index in built.values():
            assert as_index(index) is index

    def test_query_engine_handles_batchless_index(self):
        from repro.service.engine import QueryEngine

        class Minimal:
            calls = 0

            def query(self, pattern):
                type(self).calls += 1
                return float(len(pattern))

        engine = QueryEngine(Minimal(), cache_size=4)
        assert engine.query_batch(["ab", "abc", "ab"]) == [2.0, 3.0, 2.0]
        assert Minimal.calls == 2  # deduped, then per-pattern fallback

    def test_objects_without_query_are_rejected(self):
        with pytest.raises(ParameterError, match="no query"):
            as_index(object())


class TestProtocolExtras:
    def test_query_many_is_a_deprecated_alias(self, ws):
        index = repro.UsiIndex.build(ws, k=5)
        with pytest.deprecated_call():
            values = index.query_many(["TACCCC", "GGGG"])
        assert values == pytest.approx([14.6, 0.0])

    def test_dynamic_backend_appends_through_protocol(self):
        ws = WeightedString.uniform("ABABAB")
        index = repro.build(ws, k=3, backend="dynamic")
        before = index.query("AB")
        index.append("A", 1.0)
        index.append("B", 1.0)
        current = index.inner.to_weighted_string()
        assert index.query("AB") == pytest.approx(
            naive_global_utility(current, "AB")
        )
        assert index.query("AB") > before
        assert index.count("AB") == 4

    def test_collection_backends_accept_document_lists(self):
        from repro.strings.alphabet import Alphabet

        alphabet = Alphabet("ACGT")
        docs = [
            WeightedString.uniform("ACGTACGT", alphabet=alphabet),
            WeightedString.uniform("TTTACG", alphabet=alphabet),
        ]
        for backend in ("collection", "sharded"):
            index = repro.build(
                docs, k=4, backend=backend, **BUILD_OPTS.get(backend, {})
            )
            assert index.query("ACG") == pytest.approx(
                sum(naive_global_utility(doc, "ACG") for doc in docs)
            )
            assert index.document_frequency("ACG") == 2

    def test_single_string_backends_reject_collections(self):
        from repro.strings.collection import WeightedStringCollection

        collection = WeightedStringCollection([WeightedString.uniform("ABAB")])
        with pytest.raises(ParameterError, match="collection"):
            repro.build(collection, k=3, backend="usi")

    def test_query_result_dataclass(self, ws):
        index = repro.build(ws, k=5, backend="usi")
        result = index.query_result("TACCCC", with_count=True)
        assert result.utility == pytest.approx(14.6)
        assert result.count == 2
        assert result.as_dict() == {
            "pattern": "TACCCC",
            "utility": pytest.approx(14.6),
            "count": 2,
        }

    def test_numpy_pattern_round_trip(self, built, ws):
        codes = ws.alphabet.encode_pattern("TACCCC").astype(np.int64)
        for name, index in built.items():
            assert index.query(codes) == pytest.approx(14.6), name


class TestServerEndToEnd:
    def test_non_usi_backend_over_http(self, ws, tmp_path):
        import json
        import urllib.request

        from repro.service.registry import IndexRegistry
        from repro.service.server import UsiServer

        path = tmp_path / "sharded.npz"
        repro.save_index(
            repro.build(ws, k=5, backend="sharded", parallel="serial"), path
        )
        registry = IndexRegistry()
        registry.register_path("shards", path)
        with UsiServer(registry, port=0) as server:
            with urllib.request.urlopen(server.url + "/indexes", timeout=10) as response:
                listing = json.loads(response.read())["indexes"]
            assert listing[0]["backend"] == "sharded"
            request = urllib.request.Request(
                server.url + "/query",
                data=json.dumps({"patterns": ["TACCCC", "GGGG"]}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                body = json.loads(response.read())
            utilities = [row["utility"] for row in body["results"]]
            assert utilities == pytest.approx([14.6, 0.0])
            with urllib.request.urlopen(server.url + "/indexes", timeout=10) as response:
                resident = json.loads(response.read())["indexes"][0]
            assert resident["resident"] is True
            assert resident["capabilities"]["collection"] is True


class TestCapabilityHonesty:
    def test_star_import_does_not_shadow_builtin_open(self):
        namespace: dict = {}
        exec("from repro import *", namespace)
        assert "open" not in namespace
        assert repro.open is not None  # the facade attribute stays

    def test_count_flag_matches_count_support(self, built):
        for name, index in built.items():
            assert index.capabilities.count, name  # all bundled backends count
        minimal = as_index(type("OnlyQuery", (), {"query": lambda self, p: 0.0})())
        assert not minimal.capabilities.count
        with pytest.raises(NotImplementedError):
            minimal.count("A")

    def test_server_rejects_count_for_countless_backend(self, ws):
        import json
        import urllib.error
        import urllib.request

        from repro.service.registry import IndexRegistry
        from repro.service.server import UsiServer

        class OnlyQuery:
            def query(self, pattern):
                return float(len(pattern))

        registry = IndexRegistry()
        registry.register("minimal", OnlyQuery())
        with UsiServer(registry, port=0) as server:
            request = urllib.request.Request(
                server.url + "/query",
                data=json.dumps({"pattern": "AB", "count": True}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400
            assert "does not support counts" in json.loads(
                excinfo.value.read()
            )["error"]


class TestHarness:
    def test_compare_backends_default_skips_incompatible_sources(self):
        from repro.eval.harness import compare_backends
        from repro.strings.collection import WeightedStringCollection

        collection = WeightedStringCollection(
            [WeightedString.uniform("ACGTACGT")]
        )
        runs = compare_backends(collection, ["ACG"], trace_memory=False, k=4)
        names = {run.backend for run in runs}
        # single-string backends are skipped; collection-capable ones stay
        assert names == {"collection", "live", "sharded"}
        with pytest.raises(ParameterError):
            compare_backends(
                collection, ["ACG"], backends=["usi"], trace_memory=False, k=4
            )

    def test_compare_backends_rows_agree(self, ws):
        from repro.eval.harness import compare_backends

        runs = compare_backends(
            ws,
            ["TACCCC", "CCCC"],
            backends=["usi", "oracle", "bsl1"],
            trace_memory=False,
            k=5,
        )
        assert [run.backend for run in runs] == ["usi", "oracle", "bsl1"]
        for run in runs:
            assert run.answers == pytest.approx(runs[0].answers)
            assert run.build_seconds >= 0.0
