"""Tests for LCP construction, sparse-table RMQ and the LCE oracles."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.strings.alphabet import Alphabet
from repro.suffix.lce import FingerprintLce, SuffixArrayLce, naive_lce
from repro.suffix.lcp import lcp_array_kasai
from repro.suffix.rmq import SparseTableRmq
from repro.suffix.suffix_array import SuffixArray

from tests.conftest import texts_mixed


def _encode(text: str) -> np.ndarray:
    return Alphabet.from_text(text).encode(text)


def naive_lcp(text: str, sa: list[int]) -> list[int]:
    out = [0] * len(sa)
    for j in range(1, len(sa)):
        a, b = text[sa[j - 1]:], text[sa[j]:]
        k = 0
        while k < min(len(a), len(b)) and a[k] == b[k]:
            k += 1
        out[j] = k
    return out


class TestLcp:
    @pytest.mark.parametrize("text", ["BANANA", "MISSISSIPPI", "AAAA", "ABAB", "A"])
    def test_matches_naive(self, text):
        codes = _encode(text)
        index = SuffixArray(codes)
        assert lcp_array_kasai(codes, index.sa).tolist() == naive_lcp(
            text, index.sa.tolist()
        )

    def test_lcp0_is_zero(self):
        codes = _encode("BANANA")
        index = SuffixArray(codes)
        assert int(index.lcp[0]) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            lcp_array_kasai(_encode("AB"), np.asarray([0], dtype=np.int64))

    @given(texts_mixed(max_size=60))
    def test_matches_naive_property(self, text):
        codes = _encode(text)
        index = SuffixArray(codes)
        assert index.lcp.tolist() == naive_lcp(text, index.sa.tolist())


class TestRmq:
    def test_min_queries(self):
        values = [5, 3, 8, 1, 9, 2]
        rmq = SparseTableRmq(values)
        for lo in range(6):
            for hi in range(lo, 6):
                assert rmq.query(lo, hi) == min(values[lo : hi + 1])

    def test_max_queries(self):
        values = [5, 3, 8, 1, 9, 2]
        rmq = SparseTableRmq(values, maximum=True)
        for lo in range(6):
            for hi in range(lo, 6):
                assert rmq.query(lo, hi) == max(values[lo : hi + 1])

    def test_single_element(self):
        assert SparseTableRmq([42]).query(0, 0) == 42

    def test_floats(self):
        rmq = SparseTableRmq([0.5, 0.1, 0.9])
        assert rmq.query(0, 2) == pytest.approx(0.1)

    def test_bad_range(self):
        rmq = SparseTableRmq([1, 2, 3])
        with pytest.raises(ParameterError):
            rmq.query(2, 1)
        with pytest.raises(ParameterError):
            rmq.query(0, 3)

    def test_2d_rejected(self):
        with pytest.raises(ParameterError):
            SparseTableRmq(np.zeros((2, 2)))

    @given(
        st.lists(st.integers(-100, 100), min_size=1, max_size=60),
        st.data(),
    )
    def test_matches_min_property(self, values, data):
        rmq = SparseTableRmq(values)
        lo = data.draw(st.integers(0, len(values) - 1))
        hi = data.draw(st.integers(lo, len(values) - 1))
        assert rmq.query(lo, hi) == min(values[lo : hi + 1])


class TestLce:
    @pytest.mark.parametrize("text", ["BANANA", "ABABABAB", "AAAA", "ABCDEF"])
    def test_both_oracles_match_naive(self, text):
        codes = _encode(text).astype(np.int64)
        index = SuffixArray(codes)
        fp_lce = FingerprintLce(codes)
        sa_lce = SuffixArrayLce(codes, index.sa, index.lcp)
        n = len(codes)
        for i in range(n):
            for j in range(n):
                want = naive_lce(codes, i, j)
                assert fp_lce.lce(i, j) == want, (text, i, j)
                assert sa_lce.lce(i, j) == want, (text, i, j)

    def test_lce_of_suffix_with_itself(self):
        codes = _encode("BANANA").astype(np.int64)
        assert FingerprintLce(codes).lce(2, 2) == 4

    def test_out_of_range_positions_give_zero(self):
        codes = _encode("AB").astype(np.int64)
        assert FingerprintLce(codes).lce(5, 0) == 0

    def test_compare_suffixes_matches_lexicographic(self):
        text = "MISSISSIPPI"
        codes = _encode(text).astype(np.int64)
        oracle = FingerprintLce(codes)
        for i in range(len(text)):
            for j in range(len(text)):
                got = oracle.compare_suffixes(i, j)
                want = (text[i:] > text[j:]) - (text[i:] < text[j:])
                assert np.sign(got) == want

    def test_long_repetitive_lce_exceeds_direct_scan(self):
        # Force the binary-search path (> _DIRECT_SCAN letters equal).
        codes = np.zeros(200, dtype=np.int64)
        assert FingerprintLce(codes).lce(0, 50) == 150

    @given(texts_mixed(max_size=50), st.data())
    def test_fingerprint_lce_property(self, text, data):
        codes = _encode(text).astype(np.int64)
        oracle = FingerprintLce(codes)
        i = data.draw(st.integers(0, len(codes) - 1))
        j = data.draw(st.integers(0, len(codes) - 1))
        assert oracle.lce(i, j) == naive_lce(codes, i, j)
