"""Tests for the enhanced-suffix-array bottom-up traversal."""

import numpy as np
from hypothesis import given

from repro.strings.alphabet import Alphabet
from repro.strings.occurrences import naive_substring_frequencies
from repro.suffix.enhanced import bottom_up_intervals, leaf_intervals
from repro.suffix.suffix_array import SuffixArray

from tests.conftest import texts_mixed


def _index(text: str) -> SuffixArray:
    return SuffixArray(Alphabet.from_text(text).encode(text))


class TestBottomUpIntervals:
    def test_abab_nodes(self):
        index = _index("ABABAB")
        nodes = {
            (node.lcp, node.lb, node.rb, node.parent_lcp)
            for node in bottom_up_intervals(index.lcp)
        }
        # Internal nodes: 'AB' [0..2], 'ABAB' [1..2], 'B' [3..5], 'BAB' [4..5].
        assert (2, 0, 2, 0) in nodes
        assert (4, 1, 2, 2) in nodes
        assert (1, 3, 5, 0) in nodes
        assert (3, 4, 5, 1) in nodes
        assert len(nodes) == 4

    def test_no_internal_nodes_for_distinct_letters(self):
        index = _index("ABCDEF")
        assert list(bottom_up_intervals(index.lcp)) == []

    def test_root_not_reported(self):
        index = _index("ABAB")
        assert all(node.lcp > 0 for node in bottom_up_intervals(index.lcp))

    def test_frequencies_match_naive(self):
        text = "MISSISSIPPI"
        index = _index(text)
        counts = naive_substring_frequencies(text)
        for node in bottom_up_intervals(index.lcp):
            witness = text[index.sa[node.lb] : index.sa[node.lb] + node.lcp]
            assert counts[tuple(witness)] == node.frequency

    def test_child_emitted_before_parent(self):
        index = _index("ABABABAB")
        seen: list = []
        for node in bottom_up_intervals(index.lcp):
            for prior in seen:
                # If prior is nested inside node, it must be deeper.
                if node.lb <= prior.lb and prior.rb <= node.rb:
                    assert prior.lcp > node.lcp
            seen.append(node)

    @given(texts_mixed(max_size=40))
    def test_interval_frequencies_property(self, text):
        index = _index(text)
        counts = naive_substring_frequencies(text)
        for node in bottom_up_intervals(index.lcp):
            witness = text[index.sa[node.lb] : index.sa[node.lb] + node.lcp]
            assert counts[tuple(witness)] == node.frequency
            assert node.parent_lcp < node.lcp
            assert node.frequency >= 2

    @given(texts_mixed(max_size=40))
    def test_edge_substrings_share_frequency_property(self, text):
        """Every implicit node on an edge has the node's frequency."""
        index = _index(text)
        counts = naive_substring_frequencies(text)
        for node in bottom_up_intervals(index.lcp):
            start = index.sa[node.lb]
            for length in range(node.parent_lcp + 1, node.lcp + 1):
                witness = text[start : start + length]
                assert counts[tuple(witness)] == node.frequency


class TestLeafIntervals:
    def test_leaf_edges_are_frequency_one(self):
        text = "ABABX"
        index = _index(text)
        counts = naive_substring_frequencies(text)
        for node in leaf_intervals(index.sa, index.lcp, len(text)):
            start = index.sa[node.lb]
            for length in range(node.parent_lcp + 1, node.lcp + 1):
                witness = text[start : start + length]
                assert counts[tuple(witness)] == 1

    @given(texts_mixed(max_size=30))
    def test_internal_plus_leaves_cover_all_substrings(self, text):
        """Edge lengths over all explicit nodes sum to #distinct substrings."""
        index = _index(text)
        total = sum(
            node.edge_length for node in bottom_up_intervals(index.lcp)
        ) + sum(
            node.edge_length for node in leaf_intervals(index.sa, index.lcp, len(text))
        )
        assert total == len(naive_substring_frequencies(text))
