"""Tests for suffix array construction (SA-IS, doubling) and search."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConstructionError, PatternError
from repro.strings.alphabet import Alphabet
from repro.strings.occurrences import naive_occurrences
from repro.suffix.doubling import suffix_array_doubling
from repro.suffix.sais import suffix_array_sais
from repro.suffix.suffix_array import SuffixArray, build_suffix_array

from tests.conftest import texts_mixed


def naive_suffix_array(text: str) -> list[int]:
    return sorted(range(len(text)), key=lambda i: text[i:])


def _encode(text: str) -> np.ndarray:
    return Alphabet.from_text(text).encode(text)


CASES = ["A", "AA", "AB", "BA", "BANANA", "MISSISSIPPI", "ABABABAB",
         "AAAAAA", "ABCABCABC", "ZYXWVU"]


class TestConstructionAlgorithms:
    @pytest.mark.parametrize("text", CASES)
    def test_sais_matches_naive(self, text):
        assert suffix_array_sais(_encode(text)).tolist() == naive_suffix_array(text)

    @pytest.mark.parametrize("text", CASES)
    def test_doubling_matches_naive(self, text):
        assert suffix_array_doubling(_encode(text)).tolist() == naive_suffix_array(text)

    def test_empty_text(self):
        assert suffix_array_sais([]).tolist() == []
        assert suffix_array_doubling([]).tolist() == []

    def test_single_letter(self):
        assert suffix_array_sais([7]).tolist() == [0]
        assert suffix_array_doubling([7]).tolist() == [0]

    @given(texts_mixed(max_size=80))
    def test_sais_equals_doubling_property(self, text):
        codes = _encode(text)
        np.testing.assert_array_equal(
            suffix_array_sais(codes), suffix_array_doubling(codes)
        )

    def test_large_random_agreement(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 5, size=2000, dtype=np.int64)
        np.testing.assert_array_equal(
            suffix_array_sais(codes), suffix_array_doubling(codes)
        )

    def test_build_dispatch(self):
        codes = _encode("BANANA")
        np.testing.assert_array_equal(
            build_suffix_array(codes, "sais"), build_suffix_array(codes, "doubling")
        )
        with pytest.raises(ConstructionError):
            build_suffix_array(codes, "nope")


class TestSuffixArrayIndex:
    def test_rejects_empty(self):
        with pytest.raises(ConstructionError):
            SuffixArray(np.empty(0, dtype=np.int64))

    def test_sa_property_is_sorted_suffixes(self):
        text = "MISSISSIPPI"
        index = SuffixArray(_encode(text))
        assert index.sa.tolist() == naive_suffix_array(text)
        assert len(index) == len(text)

    @pytest.mark.parametrize("pattern", ["ISS", "I", "MISSISSIPPI", "PPI", "S"])
    def test_occurrences_match_naive(self, pattern):
        text = "MISSISSIPPI"
        index = SuffixArray(_encode(text))
        encoded = Alphabet.from_text(text).encode(pattern)
        assert sorted(index.occurrences(encoded).tolist()) == naive_occurrences(
            text, pattern
        )

    def test_absent_pattern(self):
        text = "MISSISSIPPI"
        index = SuffixArray(_encode(text))
        pattern = Alphabet.from_text(text).encode("SIM")
        assert index.count(pattern) == 0
        assert index.occurrences(pattern).size == 0
        assert index.interval(pattern) == (0, -1)

    def test_pattern_longer_than_text(self):
        index = SuffixArray(_encode("AB"))
        assert index.count([0, 1, 0]) == 0

    def test_empty_pattern_rejected(self):
        index = SuffixArray(_encode("AB"))
        with pytest.raises(PatternError):
            index.interval(np.empty(0, dtype=np.int64))

    def test_interval_width_is_count(self):
        text = "ABABABA"
        index = SuffixArray(_encode(text))
        lb, rb = index.interval(_encode("AB")[:2])
        assert rb - lb + 1 == 3

    @given(texts_mixed(max_size=50), st.integers(0, 10**6))
    def test_search_matches_naive_property(self, text, pick):
        index = SuffixArray(_encode(text))
        alpha = Alphabet.from_text(text)
        # Query a substring of the text plus a possibly-absent variant.
        start = pick % len(text)
        length = 1 + (pick // 7) % min(5, len(text) - start)
        pattern = text[start : start + length]
        encoded = alpha.encode(pattern)
        assert sorted(index.occurrences(encoded).tolist()) == naive_occurrences(
            text, pattern
        )

    def test_nbytes_positive_and_grows_with_lcp(self):
        bare = SuffixArray(_encode("BANANA"), with_lcp=False)
        full = SuffixArray(_encode("BANANA"), with_lcp=True)
        assert 0 < bare.nbytes() < full.nbytes()
