"""Tests for the sparse suffix array."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.strings.alphabet import Alphabet
from repro.suffix.lce import FingerprintLce
from repro.suffix.sparse import SparseSuffixArray

from tests.conftest import texts_mixed


def _sparse(text: str, positions) -> SparseSuffixArray:
    codes = Alphabet.from_text(text).encode(text).astype(np.int64)
    return SparseSuffixArray(codes, positions, FingerprintLce(codes))


def naive_sorted(text: str, positions) -> list[int]:
    return sorted(positions, key=lambda i: text[i:])


class TestSorting:
    def test_all_positions_equals_full_sa(self):
        text = "MISSISSIPPI"
        ssa = _sparse(text, range(len(text)))
        assert ssa.positions == naive_sorted(text, range(len(text)))

    def test_subset(self):
        text = "BANANA"
        ssa = _sparse(text, [0, 2, 4])
        assert ssa.positions == naive_sorted(text, [0, 2, 4])

    def test_strided_sample(self):
        text = "ABRACADABRAABRACADABRA"
        positions = list(range(0, len(text), 3))
        assert _sparse(text, positions).positions == naive_sorted(text, positions)

    def test_repetitive_text_ties(self):
        # All suffixes share long prefixes: exercises the LCE tie-breaker.
        text = "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"  # 32 A's > prefix key width
        positions = [0, 5, 10, 15]
        assert _sparse(text, positions).positions == naive_sorted(text, positions)

    def test_single_position(self):
        assert _sparse("ABC", [1]).positions == [1]

    def test_empty_sample(self):
        assert _sparse("ABC", []).positions == []

    @given(texts_mixed(max_size=60), st.data())
    def test_matches_naive_property(self, text, data):
        stride = data.draw(st.integers(1, max(1, len(text) // 2)))
        offset = data.draw(st.integers(0, stride - 1))
        positions = list(range(offset, len(text), stride))
        if not positions:
            return
        assert _sparse(text, positions).positions == naive_sorted(text, positions)


class TestSlcp:
    def test_matches_naive(self):
        text = "ABRACADABRA"
        positions = [0, 3, 5, 7]
        ssa = _sparse(text, positions)
        order = ssa.positions
        for idx in range(1, len(order)):
            a, b = text[order[idx - 1]:], text[order[idx]:]
            k = 0
            while k < min(len(a), len(b)) and a[k] == b[k]:
                k += 1
            assert ssa.slcp[idx] == k
        assert ssa.slcp[0] == 0

    def test_suffix_at_rank(self):
        text = "BANANA"
        ssa = _sparse(text, [0, 2, 4])
        assert ssa.suffix_at_rank(0) == ssa.positions[0]

    def test_nbytes_scales_with_sample(self):
        small = _sparse("ABABABAB", [0, 4])
        large = _sparse("ABABABAB", [0, 2, 4, 6])
        assert small.nbytes() < large.nbytes()


class TestValidation:
    def test_duplicate_positions_rejected(self):
        with pytest.raises(ParameterError):
            _sparse("ABC", [1, 1])

    def test_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            _sparse("ABC", [3])
        with pytest.raises(ParameterError):
            _sparse("ABC", [-1])
