"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.strings.weighted import WeightedString


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
def texts(alphabet: str = "AB", min_size: int = 1, max_size: int = 60) -> st.SearchStrategy[str]:
    """Small texts over a tiny alphabet (repeat-rich, worst-case-ish)."""
    return st.text(alphabet=alphabet, min_size=min_size, max_size=max_size)


def texts_mixed(max_size: int = 60) -> st.SearchStrategy[str]:
    """Texts over alphabets of varying size."""
    return st.one_of(
        texts("A", max_size=max_size),
        texts("AB", max_size=max_size),
        texts("ABC", max_size=max_size),
        texts("ACGT", max_size=max_size),
        texts("abcdefgh", max_size=max_size),
    )


@st.composite
def weighted_strings(draw, alphabet: str = "ABC", max_size: int = 40) -> WeightedString:
    """Random weighted strings with bounded, finite utilities."""
    text = draw(texts(alphabet, min_size=1, max_size=max_size))
    utilities = draw(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False, width=32),
            min_size=len(text),
            max_size=len(text),
        )
    )
    return WeightedString(text, utilities)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture()
def paper_example() -> WeightedString:
    """The worked Example 1 string from the paper's introduction."""
    return WeightedString(
        "ATACCCCGATAATACCCCAG",
        [0.9, 1, 3, 2, 0.7, 1, 1, 0.6, 0.5, 0.5,
         0.5, 0.8, 1, 1, 1, 0.9, 1, 1, 0.8, 1],
    )


@pytest.fixture()
def small_dna() -> WeightedString:
    """A deterministic DNA-like weighted string for cross-module tests."""
    rng = np.random.default_rng(42)
    codes = rng.integers(0, 4, size=300, dtype=np.int32)
    utilities = rng.uniform(0.5, 1.5, size=300)
    return WeightedString(codes, utilities)
