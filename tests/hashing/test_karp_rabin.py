"""Tests for repro.hashing.karp_rabin."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.hashing.karp_rabin import KarpRabinFingerprinter, fingerprint_of
from repro.strings.alphabet import Alphabet

from tests.conftest import texts


def _fp(text: str, seed: int = 0) -> KarpRabinFingerprinter:
    return KarpRabinFingerprinter(Alphabet.from_text(text).encode(text), seed=seed)


class TestFragment:
    def test_equal_substrings_equal_fingerprints(self):
        fp = _fp("ABABAB")
        assert fp.fragment(0, 2) == fp.fragment(2, 2) == fp.fragment(4, 2)

    def test_different_substrings_differ(self):
        fp = _fp("ABCDEF")
        values = {fp.fragment(i, 2) for i in range(5)}
        assert len(values) == 5

    def test_out_of_range(self):
        fp = _fp("ABC")
        with pytest.raises(ParameterError):
            fp.fragment(0, 4)
        with pytest.raises(ParameterError):
            fp.fragment(-1, 1)
        with pytest.raises(ParameterError):
            fp.fragment(0, 0)

    def test_fingerprint_is_62_bit(self):
        fp = _fp("ZYXW")
        assert 0 <= fp.fragment(0, 4) < (1 << 62)

    @given(texts("AB", min_size=2, max_size=40), st.integers(0, 5))
    def test_equal_content_equal_fingerprint_property(self, text, seed):
        fp = _fp(text, seed)
        n = len(text)
        for i in range(n):
            for j in range(i + 1, n):
                for length in (1, 2, 3):
                    if j + length <= n and text[i : i + length] == text[j : j + length]:
                        assert fp.fragment(i, length) == fp.fragment(j, length)


class TestOfCodes:
    def test_matches_fragment(self):
        alpha = Alphabet.from_text("ABRACADABRA")
        codes = alpha.encode("ABRACADABRA")
        fp = KarpRabinFingerprinter(codes)
        assert fp.of_codes(codes[2:5]) == fp.fragment(2, 3)

    def test_pattern_from_elsewhere(self):
        alpha = Alphabet("ABR")
        text_codes = alpha.encode("ABRABR")
        fp = KarpRabinFingerprinter(text_codes)
        pattern = alpha.encode("BRA")
        assert fp.of_codes(pattern) == fp.fragment(1, 3)

    def test_seed_changes_fingerprints(self):
        codes = Alphabet("AB").encode("ABAB")
        a = KarpRabinFingerprinter(codes, seed=0).of_codes(codes)
        b = KarpRabinFingerprinter(codes, seed=1).of_codes(codes)
        assert a != b


class TestVectorised:
    def test_all_windows_matches_fragment(self):
        fp = _fp("ABRACADABRA")
        for length in (1, 2, 3, 5):
            windows = fp.all_windows(length)
            assert len(windows) == fp.length - length + 1
            for i, value in enumerate(windows.tolist()):
                assert value == fp.fragment(i, length)

    def test_all_windows_bad_length(self):
        fp = _fp("ABC")
        with pytest.raises(ParameterError):
            fp.all_windows(0)
        with pytest.raises(ParameterError):
            fp.all_windows(4)

    def test_windows_at_subset(self):
        fp = _fp("ABRACADABRA")
        positions = np.asarray([0, 3, 7])
        values = fp.windows_at(positions, 3)
        for pos, value in zip(positions.tolist(), values.tolist()):
            assert value == fp.fragment(pos, 3)

    def test_windows_at_out_of_range(self):
        fp = _fp("ABC")
        with pytest.raises(ParameterError):
            fp.windows_at(np.asarray([2]), 3)


class TestCollisions:
    def test_no_collisions_among_many_short_strings(self):
        # All 4^6 = 4096 distinct 6-mers must fingerprint distinctly.
        rng = np.random.default_rng(0)
        text = rng.integers(0, 4, size=8192, dtype=np.int64)
        fp = KarpRabinFingerprinter(text)
        windows = fp.all_windows(6)
        distinct_contents = {tuple(text[i : i + 6].tolist()) for i in range(len(windows))}
        assert len(np.unique(windows)) == len(distinct_contents)

    def test_fingerprint_of_helper(self):
        assert fingerprint_of([1, 2, 3]) == fingerprint_of([1, 2, 3])
        assert fingerprint_of([1, 2, 3]) != fingerprint_of([3, 2, 1])
