"""Tests for the Ukkonen suffix tree and its navigator."""

import numpy as np
import pytest
from hypothesis import given

from repro.errors import ConstructionError, NotBuiltError, PatternError
from repro.strings.alphabet import Alphabet
from repro.strings.occurrences import naive_occurrences, naive_substring_frequencies
from repro.suffix_tree.navigation import SuffixTreeNavigator
from repro.suffix_tree.ukkonen import SuffixTree

from tests.conftest import texts_mixed


def _tree(text: str) -> tuple[SuffixTree, np.ndarray, Alphabet]:
    alpha = Alphabet.from_text(text)
    codes = alpha.encode(text)
    return SuffixTree.from_codes(codes), codes, alpha


class TestConstruction:
    def test_leaf_count_equals_suffix_count(self):
        tree, _, _ = _tree("BANANA")
        # 6 real suffixes + the sentinel-only leaf.
        assert sum(1 for _ in tree.leaves()) == 7

    def test_cannot_extend_after_finalize(self):
        tree, _, _ = _tree("AB")
        with pytest.raises(ConstructionError):
            tree.extend(0)

    def test_finalize_idempotent(self):
        tree, _, _ = _tree("AB")
        before = tree.node_count
        tree.finalize()
        assert tree.node_count == before

    def test_annotations_require_finalize(self):
        tree = SuffixTree()
        tree.extend(0)
        with pytest.raises(NotBuiltError):
            tree.string_depth(0)

    def test_suffix_indices_cover_all_suffixes(self):
        tree, codes, _ = _tree("MISSISSIPPI")
        indices = sorted(
            tree.suffix_index(leaf) for leaf in tree.leaves()
        )
        assert indices == list(range(len(codes) + 1))  # incl. sentinel leaf

    def test_online_extension_matches_batch(self):
        text = "ABCABXABCD"
        alpha = Alphabet.from_text(text)
        online = SuffixTree()
        for c in alpha.encode(text):
            online.extend(int(c))
        online.finalize()
        batch = SuffixTree.from_codes(alpha.encode(text))
        nav_a = SuffixTreeNavigator(online)
        nav_b = SuffixTreeNavigator(batch)
        for pattern in ["AB", "ABC", "BX", "X", "D", "CAB"]:
            encoded = alpha.encode(pattern)
            assert nav_a.count(encoded) == nav_b.count(encoded)


class TestNavigation:
    @pytest.mark.parametrize("pattern", ["AN", "NA", "A", "BANANA", "ANA"])
    def test_occurrences_match_naive(self, pattern):
        tree, codes, alpha = _tree("BANANA")
        nav = SuffixTreeNavigator(tree)
        got = nav.occurrences(alpha.encode(pattern)).tolist()
        assert got == naive_occurrences("BANANA", pattern)

    def test_count_matches_occurrences(self):
        tree, codes, alpha = _tree("ABABABAB")
        nav = SuffixTreeNavigator(tree)
        for pattern in ["A", "AB", "ABA", "BB"]:
            encoded = alpha.encode(pattern)
            assert nav.count(encoded) == len(nav.occurrences(encoded))

    def test_absent_pattern(self):
        tree, _, alpha = _tree("AAAB")
        nav = SuffixTreeNavigator(tree)
        assert nav.count(alpha.encode("BA")) == 0
        assert not nav.contains(alpha.encode("BB"))

    def test_empty_pattern_rejected(self):
        tree, _, _ = _tree("AB")
        with pytest.raises(PatternError):
            SuffixTreeNavigator(tree).count([])

    @given(texts_mixed(max_size=40))
    def test_counts_match_naive_property(self, text):
        tree, codes, alpha = _tree(text)
        nav = SuffixTreeNavigator(tree)
        counts = naive_substring_frequencies(text, max_length=4)
        for key, freq in counts.items():
            encoded = alpha.encode("".join(key))
            assert nav.count(encoded) == freq


class TestNodeStats:
    def test_stats_frequencies_match_naive(self):
        text = "ABABAB"
        tree, codes, alpha = _tree(text)
        nav = SuffixTreeNavigator(tree)
        counts = naive_substring_frequencies(text)
        for stats in nav.node_stats():
            witness_start = None
            # Find the substring via any occurrence: use the deepest
            # leaf below; simpler to check every represented length.
            for length in range(stats.parent_depth + 1, stats.string_depth + 1):
                matching = [
                    key for key, freq in counts.items()
                    if len(key) == length and freq == stats.frequency
                ]
                assert matching, (text, stats)

    @given(texts_mixed(max_size=30))
    def test_stats_cover_all_distinct_substrings_property(self, text):
        tree, codes, alpha = _tree(text)
        nav = SuffixTreeNavigator(tree)
        total = sum(s.edge_length for s in nav.node_stats())
        assert total == len(naive_substring_frequencies(text))

    @given(texts_mixed(max_size=30))
    def test_stats_multiset_matches_esa_oracle(self, text):
        """ST-path statistics agree with the enhanced-SA oracle."""
        from repro.suffix.enhanced import bottom_up_intervals, leaf_intervals
        from repro.suffix.suffix_array import SuffixArray

        tree, codes, alpha = _tree(text)
        nav = SuffixTreeNavigator(tree)
        st_multiset = sorted(
            (s.frequency, s.string_depth, s.parent_depth) for s in nav.node_stats()
        )
        index = SuffixArray(codes)
        esa = [
            (node.frequency, node.lcp, node.parent_lcp)
            for node in bottom_up_intervals(index.lcp)
        ]
        esa += [
            (1, node.lcp, node.parent_lcp)
            for node in leaf_intervals(index.sa, index.lcp, len(codes))
        ]
        assert st_multiset == sorted(esa)
