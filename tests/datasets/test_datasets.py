"""Tests for the synthetic dataset generators and the registry."""

import numpy as np
import pytest

from repro.core.exact_topk import exact_top_k
from repro.datasets.registry import DATASETS, load, table2_rows
from repro.datasets.synthetic import (
    make_adv,
    make_ecoli,
    make_hum,
    make_iot,
    make_xml,
)
from repro.errors import ParameterError

GENERATORS = {
    "ADV": make_adv,
    "IOT": make_iot,
    "XML": make_xml,
    "HUM": make_hum,
    "ECOLI": make_ecoli,
}


class TestGeneratorContracts:
    @pytest.mark.parametrize("name,gen", GENERATORS.items())
    def test_length_and_finiteness(self, name, gen):
        ws = gen(2000, seed=0)
        assert ws.length == 2000
        assert np.all(np.isfinite(ws.utilities))

    @pytest.mark.parametrize("name,gen", GENERATORS.items())
    def test_deterministic_per_seed(self, name, gen):
        a = gen(1000, seed=3)
        b = gen(1000, seed=3)
        np.testing.assert_array_equal(a.codes, b.codes)
        np.testing.assert_allclose(a.utilities, b.utilities)

    @pytest.mark.parametrize("name,gen", GENERATORS.items())
    def test_seed_changes_data(self, name, gen):
        a = gen(1000, seed=0)
        b = gen(1000, seed=1)
        assert not np.array_equal(a.codes, b.codes)

    @pytest.mark.parametrize("name,gen", GENERATORS.items())
    def test_too_small_rejected(self, name, gen):
        with pytest.raises(ParameterError):
            gen(10, seed=0)


class TestDomainShapes:
    def test_adv_alphabet_size(self):
        ws = make_adv(2000, seed=0)
        assert ws.alphabet.size == 14
        assert 0 < ws.utilities.min() and ws.utilities.max() <= 0.5

    def test_iot_has_long_frequent_substrings(self):
        """The structural property that breaks SH/TT."""
        ws = make_iot(4000, seed=0)
        mined = exact_top_k(ws, len(ws) // 40)
        assert max(m.length for m in mined) >= 15

    def test_iot_utilities_normalised(self):
        ws = make_iot(2000, seed=0)
        assert 0.0 <= ws.utilities.min() and ws.utilities.max() <= 1.0

    def test_xml_looks_like_markup(self):
        ws = make_xml(2000, seed=0)
        text = ws.text()
        assert "<" in text and ">" in text and "</" in text

    def test_xml_hum_grid_utilities(self):
        for gen in (make_xml, make_hum):
            ws = gen(2000, seed=0)
            grid = np.arange(0.7, 1.0 + 1e-9, 0.05)
            distances = np.abs(ws.utilities[:, None] - grid[None, :]).min(axis=1)
            assert distances.max() < 1e-9

    def test_dna_alphabets(self):
        for gen in (make_hum, make_ecoli):
            ws = gen(2000, seed=0)
            assert ws.alphabet.size == 4
            assert set(np.unique(ws.codes)) <= {0, 1, 2, 3}

    def test_dna_has_repeats(self):
        ws = make_hum(4000, seed=0)
        mined = exact_top_k(ws, 20)
        assert max(m.frequency for m in mined) >= 10

    def test_ecoli_confidence_scores(self):
        ws = make_ecoli(2000, seed=0)
        assert 0.0 <= ws.utilities.min() and ws.utilities.max() <= 1.0
        # Phred-like: concentrated near 1.
        assert np.median(ws.utilities) > 0.75

    def test_heavy_tailed_frequencies(self):
        """Top substrings dominate the rank-100 frequency — Zipfy.

        IOT is exempt: near-periodic texts have a deliberately *flat*
        top-K spectrum (many long substrings sharing high frequency).
        """
        for name, gen in GENERATORS.items():
            if name == "IOT":
                continue
            ws = gen(3000, seed=0)
            mined = exact_top_k(ws, 100)
            freqs = sorted((m.frequency for m in mined), reverse=True)
            assert freqs[0] >= 4 * freqs[-1], name


class TestRegistry:
    def test_all_five_datasets_registered(self):
        assert set(DATASETS) == {"ADV", "IOT", "XML", "HUM", "ECOLI"}

    def test_load_by_name(self):
        ws = load("adv", n=1000, seed=0)
        assert ws.length == 1000

    def test_load_unknown(self):
        with pytest.raises(ParameterError):
            load("NOPE")

    def test_default_k_follows_paper_ratio(self):
        spec = DATASETS["HUM"]
        assert spec.default_k(10_000) == int(10_000 * 29e6 / 2.9e9)

    def test_table2_rows_shape(self):
        rows = table2_rows()
        assert len(rows) == 5
        for row in rows:
            assert row["length_n"] > 0
            assert row["default_K"] >= 1
            assert row["default_s"] >= 1
