"""Tests for the workload builders: W1 / W2,p and the stress families."""

import numpy as np
import pytest

from repro.core.topk_oracle import TopKOracle
from repro.datasets.synthetic import make_adv
from repro.datasets.workloads import (
    WORKLOADS,
    build_adversarial,
    build_bursty,
    build_cache_hostile,
    build_w1,
    build_w2p,
    build_workload,
    build_zipfian,
    get_workload,
    workload_families,
)
from repro.errors import ParameterError
from repro.suffix.suffix_array import SuffixArray


@pytest.fixture(scope="module")
def adv_setup():
    ws = make_adv(3000, seed=0)
    index = SuffixArray(ws.codes)
    oracle = TopKOracle(index)
    return ws, index, oracle


class TestW1:
    def test_size(self, adv_setup):
        ws, _, oracle = adv_setup
        queries = build_w1(ws, oracle, num_queries=200, length_range=(1, 50), seed=0)
        assert len(queries) == 200

    def test_patterns_are_code_arrays(self, adv_setup):
        ws, _, oracle = adv_setup
        for q in build_w1(ws, oracle, 50, length_range=(1, 20), seed=0):
            assert isinstance(q, np.ndarray)
            assert len(q) >= 1

    def test_most_queries_are_frequent(self, adv_setup):
        ws, index, oracle = adv_setup
        queries = build_w1(ws, oracle, 300, length_range=(1, 50), seed=0)
        tau = oracle.tune_by_k(ws.length // 50).tau
        frequent = sum(1 for q in queries if index.count(q) >= tau)
        assert frequent >= 0.8 * len(queries)

    def test_deterministic(self, adv_setup):
        ws, _, oracle = adv_setup
        a = build_w1(ws, oracle, 100, length_range=(1, 30), seed=5)
        b = build_w1(ws, oracle, 100, length_range=(1, 30), seed=5)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_invalid_count(self, adv_setup):
        ws, _, oracle = adv_setup
        with pytest.raises(ParameterError):
            build_w1(ws, oracle, 0)


class TestW2p:
    def test_size_and_validity(self, adv_setup):
        ws, _, oracle = adv_setup
        queries = build_w2p(ws, oracle, 150, p=40, length_range=(1, 30), seed=0)
        assert len(queries) == 150
        for q in queries:
            assert 1 <= len(q) <= ws.length

    def test_p_extremes(self, adv_setup):
        ws, index, oracle = adv_setup
        lo = build_w2p(ws, oracle, 200, p=0, length_range=(1, 30), seed=0)
        hi = build_w2p(ws, oracle, 200, p=100, length_range=(1, 30), seed=0)
        tau = oracle.tune_by_k(ws.length // 100).tau
        hi_frequent = sum(1 for q in hi if index.count(q) >= tau)
        assert hi_frequent == len(hi)
        assert len(lo) == 200

    def test_higher_p_more_top100_queries(self, adv_setup):
        ws, index, oracle = adv_setup
        pool_k = ws.length // 100
        top_keys = {
            tuple(ws.codes[m.position : m.position + m.length].tolist())
            for m in oracle.top_k(pool_k)
        }

        def fraction_in_pool(p):
            queries = build_w2p(ws, oracle, 300, p=p, length_range=(1, 30), seed=1)
            return sum(1 for q in queries if tuple(q.tolist()) in top_keys) / 300

        assert fraction_in_pool(80) > fraction_in_pool(20) - 0.05

    def test_invalid_p(self, adv_setup):
        ws, _, oracle = adv_setup
        with pytest.raises(ParameterError):
            build_w2p(ws, oracle, 10, p=120)
        with pytest.raises(ParameterError):
            build_w2p(ws, oracle, 0, p=50)


class TestStressFamilies:
    @pytest.mark.parametrize("builder", [
        build_zipfian, build_bursty, build_adversarial, build_cache_hostile,
    ])
    def test_size_and_determinism(self, adv_setup, builder):
        ws, _, oracle = adv_setup
        a = builder(ws, oracle, 30, length_range=(1, 40), seed=7)
        b = builder(ws, oracle, 30, length_range=(1, 40), seed=7)
        assert len(a) == len(b) == 30
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
        for pattern in a:
            assert isinstance(pattern, np.ndarray)
            assert len(pattern) >= 1

    def test_bursty_repeats_back_to_back(self, adv_setup):
        ws, _, oracle = adv_setup
        patterns = build_bursty(ws, oracle, 60, length_range=(1, 30), seed=0)
        repeats = sum(
            1 for a, b in zip(patterns, patterns[1:]) if np.array_equal(a, b)
        )
        assert repeats > len(patterns) // 4

    def test_adversarial_contains_period1_runs(self, adv_setup):
        ws, _, oracle = adv_setup
        patterns = build_adversarial(ws, oracle, 30, length_range=(1, 60), seed=0)
        assert any(
            len(p) > 1 and len(set(int(c) for c in p)) == 1 for p in patterns
        )

    def test_cache_hostile_patterns_all_distinct(self, adv_setup):
        ws, _, oracle = adv_setup
        patterns = build_cache_hostile(ws, oracle, 80, length_range=(1, 40), seed=0)
        keys = {np.asarray(p, dtype=np.int64).tobytes() for p in patterns}
        assert len(keys) == 80


class TestWorkloadRegistry:
    def test_families_cover_the_stress_set(self):
        assert {"paper", "zipfian", "bursty", "adversarial",
                "cache_hostile"} <= set(workload_families())

    def test_get_unknown_raises(self):
        with pytest.raises(ParameterError):
            get_workload("w999")

    def test_registry_dispatch_equals_direct_call(self, adv_setup):
        ws, _, oracle = adv_setup
        direct = build_zipfian(ws, oracle, 25, length_range=(1, 30), seed=3)
        via_registry = build_workload(
            "zipfian", ws, 25, length_range=(1, 30), seed=3, oracle=oracle
        )
        assert all(np.array_equal(x, y) for x, y in zip(direct, via_registry))

    def test_needs_oracle_flags(self):
        assert WORKLOADS["w1"].needs_oracle
        assert not WORKLOADS["adversarial"].needs_oracle
        assert not WORKLOADS["cache_hostile"].needs_oracle
