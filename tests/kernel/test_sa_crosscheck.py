"""Suffix-array and LCP construction cross-checks on adversarial inputs.

NumPy SA-IS, list SA-IS (pure Python, O(n)), prefix doubling
(vectorised), and the kernel's suffix array must agree on every input
— including the separator-joined code arrays a document collection
produces when some documents are *empty* (consecutive separators),
single-character, or drawn from a maximal alphabet (every letter
distinct).  The two LCP constructions (vectorised rank-hierarchy walk
and the Kasai reference) are cross-checked on the same input family.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import TextKernel
from repro.strings.weighted import WeightedString
from repro.suffix.doubling import (
    suffix_array_doubling,
    suffix_array_doubling_with_ranks,
)
from repro.suffix.lcp import lcp_array_kasai, lcp_from_ranks
from repro.suffix.sais import suffix_array_sais, suffix_array_sais_list


def join_with_separators(documents: list[list[int]], separator: int) -> np.ndarray:
    """The collection joining rule at the codes level.

    Empty documents contribute nothing but their separator, so
    consecutive separators (and leading/trailing ones) appear — the
    degenerate shapes a high-level collection never emits but a robust
    substrate must sort correctly anyway.
    """
    parts: list[int] = []
    for position, document in enumerate(documents):
        parts.extend(document)
        if position != len(documents) - 1:
            parts.append(separator)
    return np.asarray(parts, dtype=np.int64)


def naive_suffix_array(codes: np.ndarray) -> np.ndarray:
    order = sorted(range(len(codes)), key=lambda i: codes[i:].tolist())
    return np.asarray(order, dtype=np.int64)


def naive_lcp(codes: np.ndarray, sa: np.ndarray) -> list[int]:
    out = [0]
    for prev, cur in zip(sa, sa[1:]):
        a, b = codes[prev:].tolist(), codes[cur:].tolist()
        h = 0
        while h < min(len(a), len(b)) and a[h] == b[h]:
            h += 1
        out.append(h)
    return out


def assert_all_constructions_agree(codes: np.ndarray) -> None:
    expected = naive_suffix_array(codes)
    assert np.array_equal(suffix_array_sais(codes), expected)
    assert np.array_equal(suffix_array_sais_list(codes), expected)
    sa, ranks = suffix_array_doubling_with_ranks(codes)
    assert np.array_equal(sa, expected)
    # Both LCP constructions agree with each other and with naive.
    want_lcp = naive_lcp(codes, expected)
    assert lcp_from_ranks(sa, ranks).tolist() == want_lcp
    assert lcp_array_kasai(codes, sa).tolist() == want_lcp
    ws = WeightedString(codes, np.ones(len(codes)))
    for algorithm in ("doubling", "sais"):
        kernel = TextKernel(ws, sa_algorithm=algorithm)
        assert np.array_equal(kernel.suffix.sa, expected), algorithm
        assert kernel.suffix.lcp.tolist() == want_lcp, algorithm


documents_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=3), min_size=0, max_size=8),
    min_size=1,
    max_size=6,
)


class TestCollectionShapes:
    @given(documents=documents_strategy)
    @settings(max_examples=60, deadline=None)
    def test_collections_with_empty_documents(self, documents):
        codes = join_with_separators(documents, separator=4)
        if len(codes) == 0:
            return  # a single empty document: nothing to index
        assert_all_constructions_agree(codes)

    def test_all_documents_empty(self):
        codes = join_with_separators([[], [], [], []], separator=1)
        assert np.array_equal(codes, [1, 1, 1])
        assert_all_constructions_agree(codes)

    @given(
        documents=st.lists(
            st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=1),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_single_character_documents(self, documents):
        codes = join_with_separators(documents, separator=2)
        assert_all_constructions_agree(codes)

    @given(n=st.integers(min_value=1, max_value=40), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_max_alphabet_texts(self, n, seed):
        # Every letter distinct (sigma = n): the alphabet upper bound.
        rng = np.random.default_rng(seed)
        codes = rng.permutation(n).astype(np.int64)
        assert_all_constructions_agree(codes)

    @given(n=st.integers(min_value=1, max_value=64), letter=st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_all_equal_texts(self, n, letter):
        # Unary texts: every suffix a prefix of the previous one — the
        # deepest possible LCPs and the doubling loop's full log n
        # rounds.
        assert_all_constructions_agree(np.full(n, letter, dtype=np.int64))

    @given(
        n=st.integers(min_value=1, max_value=80),
        sigma=st.integers(min_value=1, max_value=6),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_texts(self, n, sigma, seed):
        rng = np.random.default_rng(seed)
        assert_all_constructions_agree(rng.integers(0, sigma, size=n))

    @given(
        documents=documents_strategy,
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_kernel_batch_locate_on_degenerate_collections(self, documents, seed):
        """The vectorised batch path agrees with scalar search here too."""
        codes = join_with_separators(documents, separator=4)
        if len(codes) < 2:
            return
        ws = WeightedString(codes, np.ones(len(codes)))
        kernel = TextKernel(ws)
        rng = np.random.default_rng(seed)
        length = int(rng.integers(1, min(4, len(codes)) + 1))
        starts = rng.integers(0, len(codes) - length + 1, size=8)
        matrix = np.vstack([codes[s : s + length] for s in starts])
        lb, rb = kernel.batch_intervals(matrix)
        for row in range(len(matrix)):
            assert (int(lb[row]), int(rb[row])) == kernel.suffix.interval(matrix[row])
