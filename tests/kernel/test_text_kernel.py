"""The TextKernel contract: build once, share everywhere, batch fast."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import TextKernel, WeightedString
from repro.core.naive import naive_global_utility
from repro.kernel import record_kernel_builds

PATTERNS = ["TACCCC", "A", "TA", "CCCC", "ATAC", "GGGG", "XYZ", "C", "ATACCCCGATAATACC"]


@pytest.fixture()
def ws() -> WeightedString:
    return WeightedString(
        "ATACCCCGATAATACCCCAG",
        [0.9, 1, 3, 2, 0.7, 1, 1, 0.6, 0.5, 0.5,
         0.5, 0.8, 1, 1, 1, 0.9, 1, 1, 0.8, 1],
    )


class TestBuildOnce:
    def test_usi_bsl1_fm_share_one_substrate_build(self, ws):
        """The acceptance check: one kernel, three backends, one encode."""
        with record_kernel_builds() as events:
            kernel = TextKernel.build(ws)
            usi = repro.build(ws, k=5, backend="usi", kernel=kernel)
            bsl1 = repro.build(ws, backend="bsl1", kernel=kernel)
            fm = repro.build(ws, k=5, backend="fm", kernel=kernel)
        builds = [event for event in events if event["event"] == "build"]
        assert len(builds) == 1, builds
        # The engines genuinely hold the kernel's structures.
        assert usi.inner.suffix_array is kernel.suffix
        assert usi.inner.kernel is kernel
        assert bsl1.inner._engine.kernel is kernel
        # ... and answer correctly through them.
        for index in (usi, bsl1, fm):
            for pattern in PATTERNS:
                assert index.query(pattern) == pytest.approx(
                    naive_global_utility(ws, pattern), abs=1e-9
                )

    def test_every_kernel_aware_backend_accepts_injection(self, ws):
        kernel = TextKernel.build(ws)
        with record_kernel_builds() as events:
            for backend in ("usi", "uat", "fm", "oracle", "bsl1", "bsl2",
                            "bsl3", "bsl4", "collection"):
                index = repro.build(ws, k=5, backend=backend, kernel=kernel)
                assert index.query("TACCCC") == pytest.approx(14.6)
        assert not [event for event in events if event["event"] == "build"]

    def test_mismatched_kernel_is_rejected(self, ws):
        kernel = TextKernel.build(WeightedString.uniform("ACGTACGT"))
        with pytest.raises(repro.ReproError, match="different weighted string"):
            repro.build(ws, k=5, backend="usi", kernel=kernel)

    def test_same_text_different_utilities_is_rejected(self, ws):
        same_text = WeightedString.uniform(ws.text())
        kernel = TextKernel.build(same_text)
        with pytest.raises(repro.ReproError, match="different weighted string"):
            repro.build(ws, k=5, backend="oracle", kernel=kernel)

    def test_kernel_unaware_backend_rejects_kernel(self, ws):
        kernel = TextKernel.build(ws)
        with pytest.raises(repro.ReproError, match="kernel"):
            repro.build(ws, k=5, backend="dynamic", kernel=kernel)


class TestBatchPath:
    def test_batch_utilities_match_naive(self, ws):
        kernel = TextKernel.build(ws)
        encoded = [ws.alphabet.try_encode_pattern(p) for p in PATTERNS]
        values = kernel.batch_utilities(encoded, "sum")
        expected = [naive_global_utility(ws, p) for p in PATTERNS]
        assert values == pytest.approx(expected, abs=1e-9)

    @pytest.mark.parametrize("aggregator", ["sum", "min", "max", "avg"])
    def test_every_aggregator_matches_scalar(self, ws, aggregator):
        index = repro.build(ws, k=5, backend="oracle", aggregator=aggregator)
        batch = index.query_batch(PATTERNS)
        scalar = [index.query(p) for p in PATTERNS]
        assert batch == pytest.approx(scalar, abs=1e-9)

    def test_interval_batch_matches_scalar_interval(self, ws):
        kernel = TextKernel.build(ws)
        suffix = kernel.suffix
        for length in (1, 2, 4, 6, 16):
            patterns = [
                ws.codes[i : i + length].astype(np.int64)
                for i in range(0, ws.length - length + 1, 2)
            ]
            patterns.append(np.full(length, 3, dtype=np.int64))  # mostly absent
            lb, rb = suffix.interval_batch(np.vstack(patterns))
            for row, pattern in enumerate(patterns):
                assert (int(lb[row]), int(rb[row])) == suffix.interval(pattern)

    def test_lockstep_path_agrees_with_packed(self):
        # A huge alphabet forces the lockstep fallback (keys overflow).
        rng = np.random.default_rng(5)
        codes = rng.integers(0, 2**21, size=400, dtype=np.int64)
        ws = WeightedString(codes, rng.uniform(0.1, 2.0, size=400))
        kernel = TextKernel.build(ws)
        patterns = [codes[i : i + 4] for i in range(0, 60, 3)]
        lb, rb = kernel.suffix.interval_batch(np.vstack(patterns))
        for row, pattern in enumerate(patterns):
            assert (int(lb[row]), int(rb[row])) == kernel.suffix.interval(pattern)


class TestV3Container:
    def test_bundle_stores_substrate_once(self, ws, tmp_path):
        import zipfile

        kernel = TextKernel.build(ws)
        bundle = {
            "usi": repro.build(ws, k=5, backend="usi", kernel=kernel),
            "oracle": repro.build(ws, k=5, backend="oracle", kernel=kernel),
            "bsl1": repro.build(ws, backend="bsl1", kernel=kernel),
        }
        path = tmp_path / "bundle.npz"
        repro.save_bundle(bundle, path)
        members = zipfile.ZipFile(path).namelist()
        assert members.count("codes.npy") == 1
        assert members.count("sa.npy") == 1

        for mmap in (False, True):
            loaded = repro.load_bundle(path, mmap=mmap)
            assert set(loaded) == set(bundle)
            engines = {name: pair[0] for name, pair in loaded.items()}
            # One kernel is rebuilt and shared by every engine.
            kernels = {
                id(engines["usi"].kernel),
                id(engines["oracle"]._kernel),
                id(engines["bsl1"]._engine.kernel),
            }
            assert len(kernels) == 1
            for engine in engines.values():
                for pattern in PATTERNS:
                    assert engine.query(pattern) == pytest.approx(
                        naive_global_utility(ws, pattern), abs=1e-9
                    )

    def test_mmap_open_keeps_substrate_mapped(self, ws, tmp_path):
        path = tmp_path / "usi.npz"
        index = repro.build(ws, k=5, backend="usi")
        repro.save_index(index, path, container="v3")
        reopened = repro.open(path, mmap=True)
        sa = reopened.inner.suffix_array.sa
        assert isinstance(sa, np.memmap) or isinstance(
            getattr(sa, "base", None), np.memmap
        )
        assert reopened.query("TACCCC") == pytest.approx(14.6)

    def test_v3_is_pickle_free(self, ws, tmp_path):
        path = tmp_path / "usi.npz"
        repro.save_index(
            repro.build(ws, k=5, backend="usi"), path, container="v3"
        )
        from repro.io import load_any

        engine, backend = load_any(path, allow_pickle=False)
        assert backend == "usi"
        assert engine.query("TACCCC") == pytest.approx(14.6)

    def test_v3_single_index_serves(self, ws, tmp_path):
        from repro.service.registry import IndexRegistry

        path = tmp_path / "usi.npz"
        repro.save_index(
            repro.build(ws, k=5, backend="usi"), path, container="v3"
        )
        registry = IndexRegistry(mmap=True)
        registry.register_path("kernelized", path)
        rows = {row["name"]: row for row in registry.describe()}
        assert rows["kernelized"]["backend"] == "usi"
        assert registry.get("kernelized").query("TACCCC") == pytest.approx(14.6)

    def test_bundles_over_different_texts_are_rejected(self, ws, tmp_path):
        other = WeightedString.uniform("ACGTACGTACGT")
        with pytest.raises(repro.ReproError, match="different text"):
            repro.save_bundle(
                {
                    "a": repro.build(ws, k=5, backend="usi"),
                    "b": repro.build(other, k=5, backend="usi"),
                },
                tmp_path / "bad.npz",
            )

    def test_multi_index_bundle_refuses_single_open(self, ws, tmp_path):
        kernel = TextKernel.build(ws)
        path = tmp_path / "bundle.npz"
        repro.save_bundle(
            {
                "usi": repro.build(ws, k=5, backend="usi", kernel=kernel),
                "bsl1": repro.build(ws, backend="bsl1", kernel=kernel),
            },
            path,
        )
        with pytest.raises(repro.ReproError, match="load_bundle"):
            repro.open(path)


class TestDeprecationShim:
    def test_ws_constructed_engine_warns_but_works(self, ws):
        from repro.baselines.base import SaPswEngine

        with pytest.deprecated_call():
            engine = SaPswEngine(ws)
        codes = engine.encode("TACCCC")
        assert engine.compute(codes) == pytest.approx(14.6)
        # The shim built a private kernel internally.
        assert engine.kernel.matches(ws)

    def test_kernel_constructed_engine_does_not_warn(self, ws, recwarn):
        import warnings

        from repro.baselines.base import SaPswEngine

        kernel = TextKernel.build(ws)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = SaPswEngine(kernel)
        assert engine.compute(engine.encode("TACCCC")) == pytest.approx(14.6)


class TestHarnessSharing:
    def test_compare_backends_builds_one_substrate(self, ws):
        from repro.eval.harness import compare_backends

        with record_kernel_builds() as events:
            runs = compare_backends(
                ws,
                ["TACCCC", "CCCC", "GGGG"],
                backends=["usi", "oracle", "bsl1", "bsl2"],
                trace_memory=False,
                k=5,
            )
        builds = [event for event in events if event["event"] == "build"]
        assert len(builds) == 1, builds
        assert all(run.shared_kernel for run in runs)
        for run in runs:
            assert run.answers == pytest.approx(runs[0].answers)
