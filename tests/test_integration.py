"""End-to-end integration tests: full pipelines on every dataset.

These run the whole stack the way the benchmarks do — dataset
generation, mining, index construction, workloads, queries, metrics —
at tiny scale, asserting cross-component agreement rather than
per-module contracts.
"""

import numpy as np
import pytest

from repro.baselines import Bsl1NoCache, Bsl2LruCache, Bsl3TopKSeen, Bsl4SketchTopKSeen
from repro.core.approximate import ApproximateTopK
from repro.core.exact_topk import exact_top_k
from repro.core.naive import naive_global_utility
from repro.core.topk_oracle import TopKOracle
from repro.core.usi import UsiIndex
from repro.datasets.registry import DATASETS
from repro.datasets.workloads import build_w1, build_w2p
from repro.eval.metrics import evaluate_miner
from repro.streaming.substring_hk import SubstringHK
from repro.streaming.topk_trie import TopKTrie
from repro.suffix.suffix_array import SuffixArray

N = 1_200


@pytest.fixture(scope="module", params=sorted(DATASETS))
def pipeline(request):
    """One generated dataset with its index, oracle, and USI indexes."""
    spec = DATASETS[request.param]
    ws = spec.make(N, seed=11)
    index = SuffixArray(ws.codes)
    oracle = TopKOracle(index)
    k = max(10, spec.default_k(N))
    return spec, ws, index, oracle, k


class TestMinersAgree:
    def test_exact_and_s1_approximate_identical(self, pipeline):
        spec, ws, index, oracle, k = pipeline
        exact = exact_top_k(ws, k)
        approx = ApproximateTopK(ws, k=k, s=1).mine()
        assert sorted(m.frequency for m in exact) == sorted(
            m.frequency for m in approx
        )

    def test_approximate_never_overestimates(self, pipeline):
        spec, ws, index, oracle, k = pipeline
        for mined in ApproximateTopK(ws, k=k, s=spec.default_s).mine():
            true = index.count(mined.codes(ws.codes))
            assert mined.frequency <= true

    def test_all_miners_respect_capacity(self, pipeline):
        spec, ws, index, oracle, k = pipeline
        assert len(ApproximateTopK(ws, k=k, s=2).mine()) <= k
        assert len(SubstringHK(ws, k=k, seed=0).mine()) <= k
        assert len(TopKTrie(ws, k=k).mine()) <= k

    def test_metric_ordering(self, pipeline):
        """AT always scores at least as well as the streaming miners.

        ``s`` is lowered to 3 here: at n ~ 1e3 the dataset-default
        rounds (tuned for the benchmark scale) leave per-round samples
        of barely a hundred suffixes, a regime the paper never enters.
        """
        spec, ws, index, oracle, k = pipeline
        at = evaluate_miner(
            ApproximateTopK(ws, k=k, s=3).mine(), index, k, oracle=oracle
        )
        tt = evaluate_miner(TopKTrie(ws, k=k).mine(), index, k, oracle=oracle)
        sh = evaluate_miner(SubstringHK(ws, k=k, seed=0).mine(), index, k, oracle=oracle)
        assert at.accuracy_percent >= tt.accuracy_percent
        assert at.accuracy_percent >= sh.accuracy_percent
        assert at.ndcg >= 0.95


class TestIndexesAgree:
    def test_uet_uat_baselines_same_answers(self, pipeline):
        spec, ws, index, oracle, k = pipeline
        uet = UsiIndex.build(ws, k=k)
        uat = UsiIndex.build(ws, k=k, miner="approximate", s=spec.default_s)
        baselines = [
            Bsl1NoCache(ws),
            Bsl2LruCache(ws, capacity=k),
            Bsl3TopKSeen(ws, capacity=k),
            Bsl4SketchTopKSeen(ws, capacity=k),
        ]
        queries = build_w1(ws, oracle, 40,
                           length_range=spec.query_length_range, seed=1)
        for pattern in queries:
            want = uet.query(pattern)
            assert uat.query(pattern) == pytest.approx(want, abs=1e-6)
            for baseline in baselines:
                assert baseline.query(pattern) == pytest.approx(want, abs=1e-6)

    def test_uet_matches_naive_on_w2p(self, pipeline):
        spec, ws, index, oracle, k = pipeline
        uet = UsiIndex.build(ws, k=k)
        queries = build_w2p(ws, oracle, 15, p=50,
                            length_range=spec.query_length_range, seed=2)
        for pattern in queries:
            if len(pattern) <= 30:  # keep the naive check cheap
                assert uet.query(pattern) == pytest.approx(
                    naive_global_utility(ws, pattern), rel=1e-9, abs=1e-6
                )

    def test_fm_backend_agrees(self, pipeline):
        spec, ws, index, oracle, k = pipeline
        uet = UsiIndex.build(ws, k=k)
        fm = UsiIndex.build(ws, k=k, locate_backend="fm")
        queries = build_w1(ws, oracle, 15,
                           length_range=spec.query_length_range, seed=3)
        for pattern in queries:
            assert fm.query(pattern) == pytest.approx(uet.query(pattern), abs=1e-6)

    def test_batch_equals_scalar_on_workload(self, pipeline):
        spec, ws, index, oracle, k = pipeline
        uet = UsiIndex.build(ws, k=k)
        queries = build_w1(ws, oracle, 30,
                           length_range=spec.query_length_range, seed=4)
        batch = uet.query_batch(queries)
        assert batch == pytest.approx([uet.query(q) for q in queries], abs=1e-9)


class TestTuningConsistency:
    def test_tau_k_bounds_uncached_frequency(self, pipeline):
        """Any pattern outside H occurs at most tau_K times (Theorem 1)."""
        spec, ws, index, oracle, k = pipeline
        uet = UsiIndex.build(ws, k=k)
        tau_k = uet.report.tau_k
        rng = np.random.default_rng(5)
        for _ in range(40):
            length = int(rng.integers(1, 12))
            start = int(rng.integers(0, ws.length - length))
            pattern = ws.codes[start : start + length].astype(np.int64)
            if not uet.is_cached(pattern):
                assert index.count(pattern) <= tau_k

    def test_tau_to_k_round_trip(self, pipeline):
        spec, ws, index, oracle, k = pipeline
        point = oracle.tune_by_k(k)
        back = oracle.tune_by_tau(point.tau)
        assert back.k >= min(k, oracle.distinct_substring_count)

    def test_build_by_tau_matches_oracle(self, pipeline):
        spec, ws, index, oracle, k = pipeline
        tau = max(2, oracle.tune_by_k(k).tau)
        by_tau = UsiIndex.build(ws, tau=tau)
        assert by_tau.report.k == oracle.tune_by_tau(tau).k
