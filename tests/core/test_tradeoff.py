"""Tests for the (K, tau) trade-off selection (Section X direction)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topk_oracle import TopKOracle
from repro.core.tradeoff import (
    TradeOffPoint,
    enumerate_trade_offs,
    pick_trade_off,
    skyline,
)
from repro.errors import ParameterError
from repro.strings.alphabet import Alphabet
from repro.suffix.suffix_array import SuffixArray

from tests.conftest import texts_mixed


def _oracle(text: str) -> TopKOracle:
    return TopKOracle(SuffixArray(Alphabet.from_text(text).encode(text)))


TEXT = "ABRACADABRAABRACADABRA"


class TestEnumerate:
    def test_points_cover_the_curve(self):
        oracle = _oracle(TEXT)
        points = enumerate_trade_offs(oracle, len(TEXT))
        assert points
        ks = [p.k for p in points]
        taus = [p.tau for p in points]
        assert ks == sorted(ks)
        assert taus == sorted(taus, reverse=True)

    def test_cost_model(self):
        oracle = _oracle(TEXT)
        point = enumerate_trade_offs(oracle, len(TEXT), pattern_length=5)[0]
        assert point.size_words == len(TEXT) + point.k
        assert point.query_cost == 5 + point.tau
        assert point.construction_cost == len(TEXT) * max(point.distinct_lengths, 1)

    def test_invalid_text_length(self):
        with pytest.raises(ParameterError):
            enumerate_trade_offs(_oracle("AB"), 0)

    def test_max_points_respected(self):
        oracle = _oracle(TEXT * 3)
        assert len(enumerate_trade_offs(oracle, 66, max_points=4)) <= 4


class TestSkyline:
    def test_removes_dominated(self):
        points = [
            TradeOffPoint(1, 9, 1, 100, 10, 100),
            TradeOffPoint(2, 9, 1, 110, 10, 100),  # dominated: bigger, not faster
            TradeOffPoint(3, 5, 1, 120, 6, 100),
        ]
        front = skyline(points)
        assert [p.k for p in front] == [1, 3]

    def test_front_is_monotone(self):
        front = skyline(enumerate_trade_offs(_oracle(TEXT), len(TEXT)))
        for a, b in zip(front, front[1:]):
            assert a.size_words <= b.size_words
            assert a.query_cost > b.query_cost

    @given(texts_mixed(max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_no_point_dominates_a_front_member_property(self, text):
        oracle = _oracle(text)
        points = enumerate_trade_offs(oracle, len(text))
        front = skyline(points)
        for member in front:
            for other in points:
                strictly_better = (
                    other.size_words <= member.size_words
                    and other.query_cost <= member.query_cost
                    and (
                        other.size_words < member.size_words
                        or other.query_cost < member.query_cost
                    )
                )
                assert not strictly_better


class TestPick:
    def test_size_budget_gives_fastest_fitting(self):
        oracle = _oracle(TEXT)
        points = skyline(enumerate_trade_offs(oracle, len(TEXT)))
        budget = points[len(points) // 2].size_words
        chosen = pick_trade_off(oracle, len(TEXT), max_size_words=budget)
        assert chosen.size_words <= budget
        fitting = [p for p in points if p.size_words <= budget]
        assert chosen.query_cost == min(p.query_cost for p in fitting)

    def test_query_budget_gives_smallest_meeting(self):
        oracle = _oracle(TEXT)
        points = skyline(enumerate_trade_offs(oracle, len(TEXT)))
        budget = points[0].query_cost  # the loosest point's cost
        chosen = pick_trade_off(oracle, len(TEXT), max_query_cost=budget)
        meeting = [p for p in points if p.query_cost <= budget]
        assert chosen.size_words == min(p.size_words for p in meeting)

    def test_impossible_budget_raises(self):
        oracle = _oracle(TEXT)
        with pytest.raises(ParameterError):
            pick_trade_off(oracle, len(TEXT), max_size_words=1)

    def test_no_budget_gives_knee(self):
        oracle = _oracle(TEXT)
        chosen = pick_trade_off(oracle, len(TEXT))
        front = skyline(enumerate_trade_offs(oracle, len(TEXT)))
        assert chosen in front

    def test_both_budgets(self):
        oracle = _oracle(TEXT)
        front = skyline(enumerate_trade_offs(oracle, len(TEXT)))
        mid = front[len(front) // 2]
        chosen = pick_trade_off(
            oracle, len(TEXT),
            max_size_words=mid.size_words, max_query_cost=front[0].query_cost,
        )
        assert chosen.size_words <= mid.size_words
        assert chosen.query_cost <= front[0].query_cost
