"""Tests for the ST-backed oracle, threshold mining, and batch queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mining import mine_by_utility_threshold
from repro.core.naive import naive_global_utility
from repro.core.topk_oracle import TopKOracle
from repro.core.usi import UsiIndex
from repro.errors import ParameterError
from repro.strings.alphabet import Alphabet
from repro.strings.occurrences import all_distinct_substrings
from repro.strings.weighted import WeightedString
from repro.suffix.suffix_array import SuffixArray
from repro.suffix_tree.ukkonen import SuffixTree

from tests.conftest import texts_mixed, weighted_strings


class TestSuffixTreeOraclePath:
    def _pair(self, text: str):
        codes = Alphabet.from_text(text).encode(text)
        esa = TopKOracle(SuffixArray(codes))
        st_oracle = TopKOracle.from_suffix_tree(SuffixTree.from_codes(codes))
        return esa, st_oracle

    @pytest.mark.parametrize("text", ["ABABAB", "MISSISSIPPI", "AAAA", "ABCDE"])
    def test_suffix_positions_equal_sa(self, text):
        esa, st_oracle = self._pair(text)
        np.testing.assert_array_equal(
            esa.suffix_positions, st_oracle.suffix_positions
        )

    @pytest.mark.parametrize("text", ["ABABAB", "MISSISSIPPI", "BANANA"])
    def test_top_k_agrees(self, text):
        esa, st_oracle = self._pair(text)
        for k in (1, 4, 12, 50):
            a = sorted((m.length, m.frequency) for m in esa.top_k(k))
            b = sorted((m.length, m.frequency) for m in st_oracle.top_k(k))
            assert a == b

    def test_tuning_tasks_agree(self):
        esa, st_oracle = self._pair("ABRACADABRA")
        for k in (1, 5, 20):
            assert esa.tune_by_k(k) == st_oracle.tune_by_k(k)
        for tau in (1, 2, 4):
            assert esa.tune_by_tau(tau) == st_oracle.tune_by_tau(tau)

    def test_index_property_is_none(self):
        _, st_oracle = self._pair("ABAB")
        assert st_oracle.index is None

    def test_rejects_non_tree(self):
        with pytest.raises(ParameterError):
            TopKOracle.from_suffix_tree("not a tree")

    @given(texts_mixed(max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_agreement_property(self, text):
        esa, st_oracle = self._pair(text)
        np.testing.assert_array_equal(
            esa.suffix_positions, st_oracle.suffix_positions
        )
        assert esa.distinct_substring_count == st_oracle.distinct_substring_count
        k = max(1, esa.distinct_substring_count // 2)
        assert sorted((m.length, m.frequency) for m in esa.top_k(k)) == sorted(
            (m.length, m.frequency) for m in st_oracle.top_k(k)
        )


class TestThresholdMining:
    def test_matches_exhaustive(self):
        ws = WeightedString("ABCABCAB", [1, 2, 3, 4, 5, 6, 7, 8])
        threshold = 10.0
        mined = mine_by_utility_threshold(ws, threshold, min_length=1, max_length=4)
        mined_keys = {
            (ws.fragment_text(m.position, m.length)) for m in mined
        }
        for key in all_distinct_substrings(ws.text()):
            if 1 <= len(key) <= 4:
                pattern = "".join(key)
                expected = naive_global_utility(ws, pattern) >= threshold
                assert (pattern in mined_keys) == expected, pattern

    def test_sorted_by_utility(self):
        ws = WeightedString.uniform("ABABAB")
        mined = mine_by_utility_threshold(ws, threshold=2.0)
        utilities = [m.utility for m in mined]
        assert utilities == sorted(utilities, reverse=True)

    def test_high_threshold_empty(self):
        ws = WeightedString.uniform("ABC")
        assert mine_by_utility_threshold(ws, threshold=1e9) == []

    def test_invalid_lengths(self):
        ws = WeightedString.uniform("ABC")
        with pytest.raises(ParameterError):
            mine_by_utility_threshold(ws, 1.0, min_length=0)
        with pytest.raises(ParameterError):
            mine_by_utility_threshold(ws, 1.0, min_length=3, max_length=2)

    @given(weighted_strings(max_size=20), st.floats(0.5, 20, width=32))
    @settings(max_examples=20, deadline=None)
    def test_everything_reported_reaches_threshold_property(self, ws, threshold):
        for m in mine_by_utility_threshold(ws, threshold):
            assert m.utility >= threshold


class TestQueryBatch:
    def test_matches_scalar_queries(self, paper_example):
        index = UsiIndex.build(paper_example, k=8)
        patterns = ["TACCCC", "A", "GGGG", "AT", "CCCC", "XYZ", "ATACCCCGATAATACCCCAG"]
        batch = index.query_batch(patterns)
        scalar = [index.query(p) for p in patterns]
        assert batch == pytest.approx(scalar)

    def test_mixed_lengths_order_preserved(self):
        ws = WeightedString.uniform("ABRACADABRA" * 3)
        index = UsiIndex.build(ws, k=10)
        patterns = ["A", "ABRA", "B", "RACA", "ABRACADABRA", "C"]
        batch = index.query_batch(patterns)
        for pattern, value in zip(patterns, batch):
            assert value == pytest.approx(index.query(pattern))

    def test_empty_batch(self, paper_example):
        index = UsiIndex.build(paper_example, k=4)
        assert index.query_batch([]) == []

    def test_unknown_letters_identity(self, paper_example):
        index = UsiIndex.build(paper_example, k=4)
        assert index.query_batch(["QQQ"]) == [0.0]

    def test_numpy_patterns(self, paper_example):
        index = UsiIndex.build(paper_example, k=4)
        pattern = paper_example.alphabet.encode("TACCCC").astype(np.int64)
        assert index.query_batch([pattern]) == pytest.approx([14.6])

    @given(weighted_strings(max_size=25), st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_batch_equals_scalar_property(self, ws, k):
        index = UsiIndex.build(ws, k=k)
        text = ws.text()
        patterns = [text[:1], text[:3] or text[:1], text[-2:] or text[-1:]]
        assert index.query_batch(patterns) == pytest.approx(
            [index.query(p) for p in patterns], abs=1e-9
        )


class TestBatchFingerprinting:
    def test_matrix_matches_of_codes(self):
        from repro.hashing.karp_rabin import KarpRabinFingerprinter

        codes = Alphabet.from_text("ABRACADABRA").encode("ABRACADABRA")
        fp = KarpRabinFingerprinter(codes)
        matrix = np.asarray([[0, 1, 2], [2, 1, 0], [0, 0, 0]], dtype=np.int64)
        batch = fp.of_code_matrix(matrix)
        for row, key in zip(matrix, batch.tolist()):
            assert key == fp.of_codes(row)

    def test_rejects_non_matrix(self):
        from repro.hashing.karp_rabin import KarpRabinFingerprinter

        fp = KarpRabinFingerprinter(np.asarray([0, 1], dtype=np.int64))
        with pytest.raises(ParameterError):
            fp.of_code_matrix(np.asarray([1, 2, 3]))
