"""Tests for utility-oriented mining and the naive reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mining import top_utility_substrings
from repro.core.naive import naive_global_utility, naive_local_utility
from repro.errors import ParameterError
from repro.strings.occurrences import all_distinct_substrings
from repro.strings.weighted import WeightedString

from tests.conftest import weighted_strings


class TestNaiveReference:
    def test_example_1(self, paper_example):
        assert naive_global_utility(paper_example, "TACCCC") == pytest.approx(14.6)

    def test_local_utility(self, paper_example):
        assert naive_local_utility(paper_example, 1, 6) == pytest.approx(8.7)

    def test_absent_pattern(self, paper_example):
        assert naive_global_utility(paper_example, "CCCCCC") == 0.0

    def test_unknown_letters_are_zero(self, paper_example):
        assert naive_global_utility(paper_example, "QQ") == 0.0

    def test_aggregators(self):
        ws = WeightedString("ABAB", [1.0, 2.0, 10.0, 20.0])
        assert naive_global_utility(ws, "AB", "sum") == pytest.approx(33.0)
        assert naive_global_utility(ws, "AB", "min") == pytest.approx(3.0)
        assert naive_global_utility(ws, "AB", "max") == pytest.approx(30.0)
        assert naive_global_utility(ws, "AB", "avg") == pytest.approx(16.5)


class TestTopUtilityMining:
    def test_finds_highest_utility_substring(self):
        # 'B' positions carry all the weight.
        ws = WeightedString("ABAB", [0.0, 10.0, 0.0, 10.0])
        top = top_utility_substrings(ws, top=1, min_length=1, max_length=1)
        assert ws.fragment_text(top[0].position, top[0].length) == "B"
        assert top[0].utility == pytest.approx(20.0)

    def test_respects_length_band(self):
        ws = WeightedString.uniform("ABCABC")
        top = top_utility_substrings(ws, top=5, min_length=2, max_length=3)
        assert all(2 <= t.length <= 3 for t in top)

    def test_matches_exhaustive_ranking(self):
        ws = WeightedString("ABCABCAB", [1, 2, 3, 4, 5, 6, 7, 8])
        got = top_utility_substrings(ws, top=3, min_length=1, max_length=4)
        # Exhaustive check over all substrings in the band.
        scored = []
        for key in all_distinct_substrings(ws.text()):
            if 1 <= len(key) <= 4:
                pattern = "".join(key)
                scored.append((naive_global_utility(ws, pattern), pattern))
        scored.sort(reverse=True)
        want_top_values = [value for value, _ in scored[:3]]
        assert [t.utility for t in got] == pytest.approx(want_top_values)

    def test_frequency_reported(self):
        ws = WeightedString.uniform("ABABAB")
        top = top_utility_substrings(ws, top=1, min_length=2, max_length=2)
        assert top[0].frequency == 3

    def test_utility_vs_frequency_divergence(self):
        """The Table I effect: top-by-utility != top-by-frequency."""
        # 'Z' is rare but each occurrence is worth a fortune.
        text = "AB" * 30 + "ZZZ"
        utilities = [0.1] * 60 + [100.0] * 3
        ws = WeightedString(text, utilities)
        top = top_utility_substrings(ws, top=1, min_length=1, max_length=1)
        assert ws.fragment_text(top[0].position, 1) == "Z"

    def test_invalid_parameters(self):
        ws = WeightedString.uniform("ABC")
        with pytest.raises(ParameterError):
            top_utility_substrings(ws, top=0)
        with pytest.raises(ParameterError):
            top_utility_substrings(ws, top=1, min_length=0)
        with pytest.raises(ParameterError):
            top_utility_substrings(ws, top=1, min_length=3, max_length=2)

    @given(weighted_strings(max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_top1_dominates_all_property(self, ws):
        top = top_utility_substrings(ws, top=1)
        best = top[0].utility
        for key in all_distinct_substrings(ws.text()):
            assert naive_global_utility(ws, "".join(key)) <= best + 1e-6
