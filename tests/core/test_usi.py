"""Tests for the USI_TOP-K index (Section IV)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import naive_global_utility
from repro.core.usi import UsiIndex
from repro.errors import ParameterError, PatternError
from repro.strings.occurrences import all_distinct_substrings
from repro.strings.weighted import WeightedString

from tests.conftest import weighted_strings


class TestPaperExamples:
    def test_example_1(self, paper_example):
        """Example 1: U(TACCCC) = 14.6 with sum-of-sums."""
        index = UsiIndex.build(paper_example, k=5)
        assert index.query("TACCCC") == pytest.approx(14.6)

    def test_example_1_via_hash_table(self, paper_example):
        # With K large enough TACCCC is itself a top-K substring.
        index = UsiIndex.build(paper_example, k=60)
        assert index.is_cached("TACCCC")
        assert index.query("TACCCC") == pytest.approx(14.6)

    def test_absent_pattern_zero(self, paper_example):
        index = UsiIndex.build(paper_example, k=5)
        assert index.query("GGGG") == 0.0

    def test_letter_outside_alphabet_zero(self, paper_example):
        index = UsiIndex.build(paper_example, k=5)
        assert index.query("XYZ") == 0.0

    def test_empty_pattern_rejected(self, paper_example):
        index = UsiIndex.build(paper_example, k=5)
        with pytest.raises(PatternError):
            index.query("")


class TestCorrectness:
    @pytest.mark.parametrize("miner", ["exact", "approximate"])
    def test_all_substring_queries_match_naive(self, miner):
        ws = WeightedString("ABABABCBCBCAB", [0.5, 1, 2, 0.1, 0.9, 1, 1,
                                              2, 0.3, 0.7, 1, 0.2, 0.4])
        index = UsiIndex.build(ws, k=8, miner=miner, s=3)
        for key in all_distinct_substrings(ws.text()):
            pattern = "".join(key)
            assert index.query(pattern) == pytest.approx(
                naive_global_utility(ws, pattern), abs=1e-9
            ), pattern

    @pytest.mark.parametrize("aggregator", ["sum", "min", "max", "avg"])
    def test_aggregators_match_naive(self, aggregator):
        ws = WeightedString("ABCABCABX", [1, 2, 3, 4, 5, 6, 7, 8, 9])
        index = UsiIndex.build(ws, k=6, aggregator=aggregator)
        for pattern in ("A", "AB", "ABC", "BC", "X", "CAB"):
            assert index.query(pattern) == pytest.approx(
                naive_global_utility(ws, pattern, aggregator), abs=1e-9
            ), (aggregator, pattern)

    @given(weighted_strings(max_size=30), st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_query_matches_naive_property(self, ws, k):
        index = UsiIndex.build(ws, k=k)
        text = ws.text()
        # Check a spread of substrings plus one absent pattern.
        probes = {text[:2], text[-2:], text[: len(text) // 2 + 1], text[0]}
        for pattern in probes:
            if pattern:
                assert index.query(pattern) == pytest.approx(
                    naive_global_utility(ws, pattern), abs=1e-6
                )

    def test_uet_and_uat_agree(self):
        ws = WeightedString.uniform("ABRACADABRA" * 3)
        uet = UsiIndex.build(ws, k=10, miner="exact")
        uat = UsiIndex.build(ws, k=10, miner="approximate", s=3)
        for pattern in ("ABRA", "A", "CAD", "RAC", "DABRA"):
            assert uet.query(pattern) == pytest.approx(uat.query(pattern))

    def test_negative_utilities_supported(self):
        ws = WeightedString("ABAB", [-1.0, 2.0, -3.0, 4.0])
        index = UsiIndex.build(ws, k=3)
        assert index.query("AB") == pytest.approx((-1 + 2) + (-3 + 4))


class TestHashTableBehaviour:
    def test_frequent_pattern_cached(self):
        ws = WeightedString.uniform("AB" * 50)
        index = UsiIndex.build(ws, k=3)
        assert index.is_cached("A")
        assert index.is_cached("B")

    def test_hit_and_miss_counters(self):
        ws = WeightedString.uniform("AB" * 50)
        index = UsiIndex.build(ws, k=2)
        index.query("A")
        index.query("ABABABAB")
        assert index.hash_hits >= 1
        assert index.hash_misses >= 1

    def test_hash_entries_at_most_k(self):
        ws = WeightedString.uniform("ABCABCABC")
        index = UsiIndex.build(ws, k=7)
        assert index.hash_table_size <= 7
        assert index.report.hash_entries == index.hash_table_size

    def test_rare_pattern_not_cached(self):
        ws = WeightedString.uniform("AB" * 50 + "Z")
        index = UsiIndex.build(ws, k=2)
        assert not index.is_cached("Z")
        assert index.query("Z") == pytest.approx(1.0)

    def test_cached_query_time_independent_of_occurrences(self):
        # Smoke property: the cached path never touches the SA.
        ws = WeightedString.uniform("A" * 500)
        index = UsiIndex.build(ws, k=1)
        misses_before = index.hash_misses
        index.query("A")
        assert index.hash_misses == misses_before


class TestExplain:
    def test_hash_table_path(self):
        ws = WeightedString.uniform("AB" * 50)
        index = UsiIndex.build(ws, k=3)
        explanation = index.explain("A")
        assert explanation.path == "hash-table"
        assert explanation.occurrences == 50
        assert explanation.within_tau_bound
        assert explanation.utility == pytest.approx(index.query("A"))

    def test_text_index_path(self):
        ws = WeightedString.uniform("AB" * 50 + "Z")
        index = UsiIndex.build(ws, k=2)
        explanation = index.explain("Z")
        assert explanation.path == "text-index"
        assert explanation.occurrences == 1
        assert explanation.within_tau_bound

    def test_no_occurrence_path(self, paper_example):
        index = UsiIndex.build(paper_example, k=4)
        explanation = index.explain("GGGG")
        assert explanation.path == "no-occurrence"
        assert explanation.utility == 0.0

    def test_unencodable_path(self, paper_example):
        index = UsiIndex.build(paper_example, k=4)
        explanation = index.explain("XYZ")
        assert explanation.path == "unencodable"
        assert explanation.within_tau_bound

    def test_counters_untouched(self, paper_example):
        index = UsiIndex.build(paper_example, k=4)
        before = (index.hash_hits, index.hash_misses)
        index.explain("TACCCC")
        assert (index.hash_hits, index.hash_misses) == before

    def test_exact_miner_always_within_bound(self):
        ws = WeightedString.uniform("ABRACADABRA" * 4)
        index = UsiIndex.build(ws, k=10)
        text = ws.text()
        for start in range(0, 30, 3):
            explanation = index.explain(text[start : start + 4])
            assert explanation.within_tau_bound


class TestParametersAndReport:
    def test_requires_exactly_one_of_k_tau(self):
        ws = WeightedString.uniform("ABAB")
        with pytest.raises(ParameterError):
            UsiIndex.build(ws)
        with pytest.raises(ParameterError):
            UsiIndex.build(ws, k=2, tau=2)

    def test_build_by_tau(self):
        ws = WeightedString.uniform("ABABABAB")
        index = UsiIndex.build(ws, tau=3)
        # All substrings with frequency >= 3 are cached.
        assert index.is_cached("AB")
        assert index.is_cached("A")
        assert not index.is_cached("ABABABAB")

    def test_tau_report_consistent(self):
        ws = WeightedString.uniform("ABABABAB")
        index = UsiIndex.build(ws, k=4)
        assert index.report.k == 4
        assert index.report.tau_k >= 1
        assert index.report.miner == "exact"

    def test_unknown_miner_rejected(self):
        ws = WeightedString.uniform("ABAB")
        with pytest.raises(ParameterError):
            UsiIndex.build(ws, k=2, miner="magic")

    def test_count_exposed(self, paper_example):
        index = UsiIndex.build(paper_example, k=5)
        assert index.count("TACCCC") == 2
        assert index.count("ZZZ") == 0

    def test_query_many(self, paper_example):
        index = UsiIndex.build(paper_example, k=5)
        values = index.query_many(["TACCCC", "A", "GGGG"])
        assert len(values) == 3
        assert values[0] == pytest.approx(14.6)

    def test_nbytes_positive_and_monotone_in_k(self):
        ws = WeightedString.uniform("ABRACADABRA" * 10)
        small = UsiIndex.build(ws, k=2)
        large = UsiIndex.build(ws, k=50)
        assert 0 < small.nbytes() <= large.nbytes()

    def test_numpy_pattern_accepted(self, paper_example):
        index = UsiIndex.build(paper_example, k=5)
        pattern = paper_example.alphabet.encode("TACCCC").astype(np.int64)
        assert index.query(pattern) == pytest.approx(14.6)
