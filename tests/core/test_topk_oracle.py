"""Tests for the Section-V oracle: Exact-Top-K and the tuning tasks."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.exact_topk import exact_top_k
from repro.core.topk_oracle import TopKOracle
from repro.errors import ParameterError
from repro.strings.alphabet import Alphabet
from repro.strings.occurrences import (
    naive_substring_frequencies,
    naive_top_k_frequent,
    tie_threshold_frequency,
)
from repro.suffix.suffix_array import SuffixArray

from tests.conftest import texts_mixed


def _oracle(text: str, include_leaves: bool = True) -> TopKOracle:
    codes = Alphabet.from_text(text).encode(text)
    return TopKOracle(SuffixArray(codes), include_leaves=include_leaves)


class TestExactTopK:
    def test_frequency_multiset_matches_naive(self):
        text = "ABABAB"
        for k in (1, 2, 3, 6, 10):
            got = sorted(m.frequency for m in exact_top_k(text, k))
            want = sorted(f for _, f in naive_top_k_frequent(text, k))
            assert got == want, k

    def test_witnesses_have_reported_frequency(self):
        text = "MISSISSIPPI"
        counts = naive_substring_frequencies(text)
        for mined in exact_top_k(text, 12):
            witness = text[mined.position : mined.position + mined.length]
            assert counts[tuple(witness)] == mined.frequency

    def test_reported_substrings_distinct(self):
        text = "ABRACADABRA"
        mined = exact_top_k(text, 15)
        keys = {text[m.position : m.position + m.length] for m in mined}
        assert len(keys) == len(mined)

    def test_k_exceeding_distinct_substrings(self):
        mined = exact_top_k("AB", 100)
        assert len(mined) == 3

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            exact_top_k("AB", 0)

    def test_sais_algorithm_agrees(self):
        a = exact_top_k("ABRACADABRA", 8, sa_algorithm="doubling")
        b = exact_top_k("ABRACADABRA", 8, sa_algorithm="sais")
        assert [m.frequency for m in a] == [m.frequency for m in b]

    @given(texts_mixed(max_size=40), st.integers(1, 25))
    def test_matches_naive_property(self, text, k):
        got = sorted(m.frequency for m in exact_top_k(text, k))
        want = sorted(f for _, f in naive_top_k_frequent(text, k))
        assert got == want

    @given(texts_mixed(max_size=40), st.integers(1, 25))
    def test_no_skipped_heavier_substring_property(self, text, k):
        """Nothing outside the reported set may beat the reported minimum."""
        mined = exact_top_k(text, k)
        counts = naive_substring_frequencies(text)
        if len(mined) < min(k, len(counts)):
            return
        tau = min(m.frequency for m in mined)
        reported = {
            tuple(text[m.position : m.position + m.length]) for m in mined
        }
        for key, freq in counts.items():
            if key not in reported:
                assert freq <= tau


class TestTripletOutput:
    def test_triplets_encode_sa_intervals(self):
        text = "ABABAB"
        codes = Alphabet.from_text(text).encode(text)
        index = SuffixArray(codes)
        oracle = TopKOracle(index)
        for t in oracle.top_k_triplets(5):
            # Every suffix in SA[lb..rb] starts with the substring.
            witness = codes[index.sa[t.lb] : index.sa[t.lb] + t.lcp]
            for rank in range(t.lb, t.rb + 1):
                start = index.sa[rank]
                np.testing.assert_array_equal(
                    codes[start : start + t.lcp], witness
                )
            assert t.frequency == t.rb - t.lb + 1

    def test_counts(self):
        oracle = _oracle("ABABAB")
        assert len(oracle.top_k_triplets(4)) == 4
        assert oracle.triplet_count > 0


class TestTaskII:
    def test_tau_k_matches_naive(self):
        text = "ABRACADABRA"
        oracle = _oracle(text)
        for k in (1, 2, 5, 10, 20):
            point = oracle.tune_by_k(k)
            assert point.tau == tie_threshold_frequency(text, k)

    def test_distinct_lengths_matches_listing(self):
        text = "ABABABXY"
        oracle = _oracle(text)
        for k in (1, 3, 7, 12):
            point = oracle.tune_by_k(k)
            lengths = {m.length for m in oracle.top_k(k)}
            assert point.distinct_lengths == max(lengths)
            # Lengths are a contiguous prefix 1..L_K (oracle invariant).
            assert lengths == set(range(1, point.distinct_lengths + 1))

    def test_k_beyond_distinct_substrings_clamped(self):
        oracle = _oracle("AB")
        point = oracle.tune_by_k(10_000)
        assert point.k == 3
        assert point.tau == 1

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            _oracle("AB").tune_by_k(0)

    @given(texts_mixed(max_size=40), st.integers(1, 30))
    def test_tau_property(self, text, k):
        assert _oracle(text).tune_by_k(k).tau == tie_threshold_frequency(text, k)


class TestTaskIII:
    def test_k_tau_matches_naive(self):
        text = "ABRACADABRA"
        counts = naive_substring_frequencies(text)
        oracle = _oracle(text)
        for tau in (1, 2, 3, 5):
            want = sum(1 for f in counts.values() if f >= tau)
            assert oracle.tune_by_tau(tau).k == want

    def test_tau_above_max_frequency(self):
        oracle = _oracle("ABAB")
        point = oracle.tune_by_tau(100)
        assert point.k == 0
        assert point.distinct_lengths == 0

    def test_invalid_tau(self):
        with pytest.raises(ParameterError):
            _oracle("AB").tune_by_tau(0)

    @given(texts_mixed(max_size=40), st.integers(1, 10))
    def test_k_tau_property(self, text, tau):
        counts = naive_substring_frequencies(text)
        want = sum(1 for f in counts.values() if f >= tau)
        assert _oracle(text).tune_by_tau(tau).k == want

    def test_round_trip_k_tau(self):
        """tune_by_tau(tune_by_k(k).tau).k >= k (tau-frequent covers top-K)."""
        oracle = _oracle("ABRACADABRAABRACADABRA")
        for k in (1, 5, 10, 40):
            tau = oracle.tune_by_k(k).tau
            assert oracle.tune_by_tau(tau).k >= min(
                k, oracle.distinct_substring_count
            )


class TestOracleStructure:
    def test_distinct_substring_count_matches_naive(self):
        for text in ("ABAB", "AAAA", "ABCD", "MISSISSIPPI"):
            assert _oracle(text).distinct_substring_count == len(
                naive_substring_frequencies(text)
            )

    def test_without_leaves_only_repeated(self):
        oracle = _oracle("ABABX", include_leaves=False)
        mined = oracle.top_k(100)
        assert all(m.frequency >= 2 for m in mined)

    def test_nbytes_positive(self):
        assert _oracle("BANANA").nbytes() > 0

    def test_trade_off_curve_monotone(self):
        oracle = _oracle("ABRACADABRAABRACADABRA")
        curve = oracle.trade_off_curve()
        taus = [p.tau for p in curve]
        ks = [p.k for p in curve]
        assert taus == sorted(taus, reverse=True)
        assert ks == sorted(ks)

    def test_trade_off_curve_max_points(self):
        oracle = _oracle("ABRACADABRAABRACADABRA")
        assert len(oracle.trade_off_curve(max_points=3)) <= 3
