"""Tests for Approximate-Top-K (Section VI)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approximate import ApproximateTopK
from repro.core.exact_topk import exact_top_k
from repro.errors import ParameterError
from repro.strings.occurrences import naive_occurrences, naive_substring_frequencies

from tests.conftest import texts_mixed


class TestExactness:
    def test_s1_is_exact(self):
        """One round samples everything: identical to Exact-Top-K."""
        text = "ABRACADABRAABRACADABRA"
        for k in (1, 5, 10):
            approx = ApproximateTopK(text, k=k, s=1).mine()
            exact = exact_top_k(text, k)
            assert sorted(m.frequency for m in approx) == sorted(
                m.frequency for m in exact
            )

    @given(texts_mixed(max_size=40), st.integers(1, 12))
    @settings(max_examples=30)
    def test_s1_matches_exact_property(self, text, k):
        approx = ApproximateTopK(text, k=k, s=1).mine()
        exact = exact_top_k(text, k)
        assert sorted(m.frequency for m in approx) == sorted(
            m.frequency for m in exact
        )


class TestOneSidedError:
    @given(texts_mixed(max_size=50), st.integers(1, 10), st.integers(1, 6))
    @settings(max_examples=40)
    def test_frequencies_never_overestimated_property(self, text, k, s):
        """The Theorem 3 invariant: reported <= true frequency, always."""
        s = min(s, len(text))
        miner = ApproximateTopK(text, k=k, s=s)
        for mined in miner.mine():
            substring = text[mined.position : mined.position + mined.length]
            true_freq = len(naive_occurrences(text, substring))
            assert mined.frequency <= true_freq, (text, substring)

    def test_reported_substrings_actually_occur(self):
        text = "ABABABCCCABAB"
        for mined in ApproximateTopK(text, k=5, s=3).mine():
            assert mined.position + mined.length <= len(text)
            assert mined.frequency >= 1


class TestAccuracyOnRepetitiveText:
    def test_hot_substrings_found(self):
        """A very frequent motif must survive sampling."""
        text = "XYZ" * 60 + "Q"
        mined = ApproximateTopK(text, k=3, s=4).mine()
        contents = {
            text[m.position : m.position + m.length] for m in mined
        }
        assert contents & {"X", "Y", "Z"}

    def test_more_rounds_degrade_gracefully(self):
        text = ("ABCDE" * 40) + "XY"
        exact_freqs = sorted(m.frequency for m in exact_top_k(text, 5))
        for s in (1, 2, 4):
            approx = sorted(
                m.frequency for m in ApproximateTopK(text, k=5, s=s).mine()
            )
            # Sampled frequency sums can only shrink.
            assert all(a <= e for a, e in zip(approx, exact_freqs))


class TestParameters:
    def test_bad_k(self):
        with pytest.raises(ParameterError):
            ApproximateTopK("AB", k=0, s=1)

    def test_bad_s(self):
        with pytest.raises(ParameterError):
            ApproximateTopK("AB", k=1, s=0)
        with pytest.raises(ParameterError):
            ApproximateTopK("AB", k=1, s=3)

    def test_stats_recorded(self):
        miner = ApproximateTopK("ABABABAB", k=2, s=2)
        miner.mine()
        assert miner.stats.rounds == 2
        assert len(miner.stats.sample_sizes) == 2
        assert sum(miner.stats.sample_sizes) == 8
        assert miner.stats.peak_auxiliary_bytes > 0

    def test_sample_space_shrinks_with_s(self):
        text = "AB" * 200
        small_s = ApproximateTopK(text, k=4, s=2)
        small_s.mine()
        large_s = ApproximateTopK(text, k=4, s=8)
        large_s.mine()
        assert large_s.stats.peak_auxiliary_bytes < small_s.stats.peak_auxiliary_bytes

    def test_deterministic_given_seed(self):
        text = "ABRACADABRA" * 4
        a = ApproximateTopK(text, k=5, s=3, seed=1).mine()
        b = ApproximateTopK(text, k=5, s=3, seed=1).mine()
        assert a == b
