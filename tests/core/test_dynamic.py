"""Tests for the dynamic (append-only) USI index (Section X)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic import DynamicUsiIndex
from repro.core.naive import naive_global_utility
from repro.core.usi import UsiIndex
from repro.errors import ParameterError
from repro.strings.weighted import WeightedString


def _rebuilt_equivalent(dyn: DynamicUsiIndex, k: int) -> UsiIndex:
    return UsiIndex.build(dyn.to_weighted_string(), k=k)


class TestAppendSemantics:
    def test_append_grows_length(self):
        dyn = DynamicUsiIndex(WeightedString.uniform("ABAB"), k=3)
        dyn.append("A", 1.0)
        assert dyn.length == 5
        assert dyn.tail_length == 1

    def test_query_sees_appended_occurrences(self):
        dyn = DynamicUsiIndex(WeightedString.uniform("ABAB"), k=3)
        before = dyn.query("AB")
        dyn.append("A", 1.0)
        dyn.append("B", 1.0)
        after = dyn.query("AB")
        assert after == pytest.approx(before + 2.0)

    def test_boundary_crossing_occurrence_counted(self):
        # Pattern 'BA' appears only across the old/new boundary.
        dyn = DynamicUsiIndex(WeightedString("AAB", [1, 1, 5]), k=2)
        dyn.append("A", 7.0)
        assert dyn.query("BA") == pytest.approx(12.0)

    def test_matches_full_rebuild(self):
        ws = WeightedString("ABCABC", [1, 2, 3, 1, 2, 3])
        dyn = DynamicUsiIndex(ws, k=4)
        for letter, utility in [("A", 1.5), ("B", 2.5), ("C", 0.5), ("A", 1.0)]:
            dyn.append(letter, utility)
        rebuilt = _rebuilt_equivalent(dyn, k=4)
        for pattern in ("A", "AB", "ABC", "CA", "BCA", "CABC"):
            assert dyn.query(pattern) == pytest.approx(rebuilt.query(pattern))

    def test_pattern_longer_than_text_zero(self):
        dyn = DynamicUsiIndex(WeightedString.uniform("AB"), k=2)
        assert dyn.query("ABABAB") == 0.0

    def test_extend_batch(self):
        dyn = DynamicUsiIndex(WeightedString.uniform("AB"), k=2)
        dyn.extend("ABAB", [1.0] * 4)
        assert dyn.length == 6
        full = dyn.to_weighted_string()
        assert full.text() == "ABABAB"

    def test_extend_length_mismatch(self):
        dyn = DynamicUsiIndex(WeightedString.uniform("AB"), k=2)
        with pytest.raises(ParameterError):
            dyn.extend("AB", [1.0])

    def test_novel_letter_rejected(self):
        dyn = DynamicUsiIndex(WeightedString.uniform("AB"), k=2)
        with pytest.raises(Exception):
            dyn.append("Z", 1.0)


class TestRebuildPolicy:
    def test_rebuild_triggered_past_threshold(self):
        dyn = DynamicUsiIndex(
            WeightedString.uniform("AB" * 40), k=4, rebuild_fraction=0.05
        )
        # MIN_TAIL=64 dominates; push beyond it.
        for _ in range(70):
            dyn.append("A", 1.0)
        assert dyn.rebuild_count >= 1
        assert dyn.tail_length < 70

    def test_queries_correct_across_rebuild(self):
        base = WeightedString.uniform("AB" * 40)
        dyn = DynamicUsiIndex(base, k=4, rebuild_fraction=0.05)
        appended = "ABAAB" * 14  # 70 letters: forces a rebuild
        for letter in appended:
            dyn.append(letter, 1.0)
        full = dyn.to_weighted_string()
        for pattern in ("AB", "AAB", "BA"):
            assert dyn.query(pattern) == pytest.approx(
                naive_global_utility(full, pattern)
            )

    def test_invalid_fraction(self):
        with pytest.raises(ParameterError):
            DynamicUsiIndex(WeightedString.uniform("AB"), k=2, rebuild_fraction=0.0)


class TestAgainstNaive:
    @given(
        st.text(alphabet="AB", min_size=2, max_size=20),
        st.lists(
            st.tuples(st.sampled_from("AB"), st.floats(0, 5, allow_nan=False, width=32)),
            min_size=0,
            max_size=10,
        ),
        st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_dynamic_equals_naive_property(self, text, appends, k):
        from repro.strings.alphabet import Alphabet

        ws = WeightedString.uniform(text, alphabet=Alphabet("AB"))
        dyn = DynamicUsiIndex(ws, k=k)
        for letter, utility in appends:
            dyn.append(letter, utility)
        full = dyn.to_weighted_string()
        for pattern in {text[:2], "AB", "BA", text[-1]}:
            if pattern:
                assert dyn.query(pattern) == pytest.approx(
                    naive_global_utility(full, pattern), abs=1e-6
                ), pattern

    def test_min_aggregator_merges_across_boundary(self):
        ws = WeightedString("ABAB", [5.0, 5.0, 1.0, 1.0])
        dyn = DynamicUsiIndex(ws, k=3, aggregator="min")
        dyn.append("A", 0.1)
        dyn.append("B", 0.1)
        full = dyn.to_weighted_string()
        assert dyn.query("AB") == pytest.approx(
            naive_global_utility(full, "AB", "min")
        )

    def test_avg_aggregator_merges_across_boundary(self):
        ws = WeightedString("ABAB", [2.0, 2.0, 4.0, 4.0])
        dyn = DynamicUsiIndex(ws, k=3, aggregator="avg")
        dyn.append("A", 6.0)
        dyn.append("B", 6.0)
        full = dyn.to_weighted_string()
        assert dyn.query("AB") == pytest.approx(
            naive_global_utility(full, "AB", "avg")
        )
