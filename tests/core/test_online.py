"""Tests for the online frequency tracker (Section X machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact_topk import exact_top_k
from repro.core.online import OnlineFrequencyTracker
from repro.errors import ParameterError, PatternError
from repro.strings.occurrences import naive_occurrences, naive_top_k_frequent


def _feed(letters) -> OnlineFrequencyTracker:
    tracker = OnlineFrequencyTracker()
    tracker.extend_all(letters)
    return tracker


class TestCounts:
    def test_simple_stream(self):
        tracker = _feed([0, 1, 0, 1, 0])
        assert tracker.count([0]) == 3
        assert tracker.count([1]) == 2
        assert tracker.count([0, 1]) == 2
        assert tracker.count([1, 0]) == 2
        assert tracker.count([0, 1, 0, 1, 0]) == 1

    def test_absent_pattern(self):
        tracker = _feed([0, 0, 0])
        assert tracker.count([1]) == 0
        assert tracker.count([0, 1]) == 0

    def test_pattern_longer_than_stream(self):
        tracker = _feed([0, 1])
        assert tracker.count([0, 1, 0]) == 0

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            _feed([0]).count([])

    def test_negative_letter_rejected(self):
        tracker = OnlineFrequencyTracker()
        with pytest.raises(ParameterError):
            tracker.extend(-1)

    def test_counts_correct_while_suffixes_pending(self):
        # "0 0" leaves the suffix "0" implicit (rule 3); counts must
        # still be exact mid-stream.
        tracker = OnlineFrequencyTracker()
        tracker.extend(0)
        assert tracker.count([0]) == 1
        tracker.extend(0)
        assert tracker.count([0]) == 2
        assert tracker.count([0, 0]) == 1
        tracker.extend(0)
        assert tracker.count([0]) == 3
        assert tracker.count([0, 0]) == 2

    @given(
        st.lists(st.integers(0, 2), min_size=1, max_size=40),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_at_every_prefix_property(self, stream, data):
        tracker = OnlineFrequencyTracker()
        prefix: list[int] = []
        for letter in stream:
            tracker.extend(letter)
            prefix.append(letter)
            m = data.draw(st.integers(1, min(4, len(prefix))))
            start = data.draw(st.integers(0, len(prefix) - m))
            pattern = prefix[start : start + m]
            assert tracker.count(pattern) == len(
                naive_occurrences(prefix, pattern)
            )


class TestTopK:
    def test_matches_naive(self):
        stream = [0, 1, 0, 1, 0, 0, 1]
        tracker = _feed(stream)
        for k in (1, 3, 8):
            got = sorted(m.frequency for m in tracker.top_k(k))
            want = sorted(f for _, f in naive_top_k_frequent(stream, k))
            assert got == want

    def test_matches_offline_exact_miner(self):
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 3, size=80).tolist()
        tracker = _feed(stream)
        for k in (5, 15, 40):
            online = sorted(m.frequency for m in tracker.top_k(k))
            offline = sorted(m.frequency for m in exact_top_k(stream, k))
            assert online == offline

    def test_witnesses_valid(self):
        stream = [0, 1, 2, 0, 1, 2, 0, 1]
        tracker = _feed(stream)
        for mined in tracker.top_k(10):
            window = stream[mined.position : mined.position + mined.length]
            assert len(window) == mined.length
            assert tracker.count(window) == mined.frequency

    def test_empty_stream(self):
        assert OnlineFrequencyTracker().top_k(3) == []

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            _feed([0]).top_k(0)

    def test_evolves_with_stream(self):
        tracker = OnlineFrequencyTracker()
        tracker.extend_all([0, 0, 0])
        assert tracker.top_k(1)[0].frequency == 3  # '0' x3
        tracker.extend_all([1, 1, 1, 1])
        top = tracker.top_k(1)[0]
        assert top.frequency == 4  # now '1' x4

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=30), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_top_k_property(self, stream, k):
        tracker = _feed(stream)
        got = sorted(m.frequency for m in tracker.top_k(k))
        want = sorted(f for _, f in naive_top_k_frequent(stream, k))
        assert got == want


class TestTreeIntegrity:
    def test_online_parents_match_finalized_annotation(self):
        """The incrementally maintained parents agree with finalize()."""
        from repro.core.online import _CountingSuffixTree

        rng = np.random.default_rng(1)
        stream = rng.integers(0, 3, size=60).tolist()
        tree = _CountingSuffixTree()
        for letter in stream:
            tree.extend(letter)
        tree.finalize()
        # finalize() recomputes parents from scratch via DFS; the
        # incrementally maintained array must agree exactly (the hooks
        # also fire during the sentinel pass).
        for node in range(1, tree.node_count):
            assert tree.parent(node) == tree.parents[node], node
        # After finalize every suffix has a leaf, so the online counts
        # equal the recomputed frequencies exactly.
        for node in range(1, tree.node_count):
            assert tree.frequency(node) == tree.counts[node], node
