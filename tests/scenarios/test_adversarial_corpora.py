"""Adversarial-input regressions: worst-case corpora through the full
build -> save -> reopen -> query lifecycle.

``a^n b^n`` (one maximal same-letter chain pair), all-equal (period
1), period-2, and max-alphabet (all letters distinct) corpora are the
inputs that historically break suffix sorting (SA-IS bucket logic),
the length-bucket batch path, and persistence layers that assume
"typical" alphabets.  Each backend must answer exactly — before and
after a round-trip through its persistence format.
"""

import numpy as np
import pytest

import repro
from repro.api import open_index
from repro.core.naive import naive_global_utility
from repro.datasets.scenarios import adversarial_corpora
from repro.ingest.live import LiveIndex
from repro.io import save_index

N = 400
CORPORA = adversarial_corpora(N, seed=0)


def _probes(ws):
    """Prefixes, mid-string runs, and an absent pattern per corpus."""
    codes = ws.codes.astype(np.int64)
    probes = [
        codes[:1],
        codes[: min(8, len(codes))],
        codes[len(codes) // 2 : len(codes) // 2 + 5],
        codes[-3:],
        np.asarray([ws.alphabet.size - 1, 0], dtype=np.int64),  # likely absent
    ]
    return [p for p in probes if len(p)]


def _expected(ws, patterns):
    return [naive_global_utility(ws, p) for p in patterns]


@pytest.mark.parametrize("corpus_name", sorted(CORPORA))
@pytest.mark.parametrize("backend", ["usi", "fm"])
def test_string_backends_survive_save_and_mmap_reopen(
    corpus_name, backend, tmp_path
):
    ws = CORPORA[corpus_name]
    patterns = _probes(ws)
    expected = _expected(ws, patterns)

    index = repro.build(ws, backend=backend, k=32)
    assert np.allclose(index.query_batch(patterns), expected, atol=1e-9)

    path = tmp_path / f"{corpus_name}.npz"
    if backend == "usi":
        save_index(index, path, container="v3")  # the mmap-able bundle
        reopened = open_index(path, mmap=True)
    else:
        save_index(index, path)  # fm persists through the tagged container
        reopened = open_index(path)
    assert np.allclose(reopened.query_batch(patterns), expected, atol=1e-9)
    assert [int(c) for c in reopened.count_batch(patterns)] == [
        int(c) for c in index.count_batch(patterns)
    ]


@pytest.mark.parametrize("corpus_name", sorted(CORPORA))
def test_sharded_backend_survives_save_and_reopen(corpus_name, tmp_path):
    ws = CORPORA[corpus_name]
    patterns = _probes(ws)
    expected = _expected(ws, patterns)

    index = repro.build(ws, backend="sharded", k=32, shards=2)
    assert np.allclose(index.query_batch(patterns), expected, atol=1e-9)

    path = tmp_path / f"{corpus_name}-sharded.npz"
    save_index(index, path)
    reopened = open_index(path)
    assert np.allclose(reopened.query_batch(patterns), expected, atol=1e-9)


@pytest.mark.parametrize("corpus_name", sorted(CORPORA))
def test_live_backend_survives_durable_reopen(corpus_name, tmp_path):
    ws = CORPORA[corpus_name]
    patterns = _probes(ws)
    expected = _expected(ws, patterns)

    directory = tmp_path / f"{corpus_name}-live"
    index = repro.build(ws, backend="live", k=32, directory=str(directory))
    assert np.allclose(index.query_batch(patterns), expected, atol=1e-9)
    index.inner.close()

    reopened = LiveIndex.open(str(directory))
    try:
        assert np.allclose(reopened.query_batch(patterns), expected, atol=1e-9)
    finally:
        reopened.close()
