"""Scenario-registry semantics: names, errors, and the matrix surface."""

import numpy as np
import pytest

from repro.datasets.baselines import PINNED_BASELINES
from repro.datasets.scenarios import (
    Scenario,
    available_scenarios,
    describe_scenarios,
    get_scenario,
    register_scenario,
)
from repro.datasets.workloads import (
    WORKLOADS,
    available_workloads,
    get_workload,
    workload_families,
)
from repro.errors import ParameterError
from repro.strings.weighted import WeightedString


class TestRegistrySurface:
    def test_at_least_five_scenarios_registered(self):
        assert len(available_scenarios()) >= 5

    def test_at_least_four_workload_families(self):
        assert len(workload_families()) >= 4

    def test_every_scenario_has_a_pinned_baseline(self):
        assert set(available_scenarios()) == set(PINNED_BASELINES)

    def test_get_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(ParameterError, match="registered"):
            get_scenario("no_such_world")

    def test_get_unknown_workload_raises(self):
        with pytest.raises(ParameterError):
            get_workload("no_such_workload")

    def test_describe_covers_every_scenario(self):
        rows = describe_scenarios()
        assert set(rows) == set(available_scenarios())
        for row in rows.values():
            assert row["workloads"]
            assert row["backends"]
            assert row["default_k"] >= 1

    def test_scenario_workloads_are_all_registered(self):
        for name in available_scenarios():
            for workload in get_scenario(name).workloads:
                assert workload in WORKLOADS

    def test_available_workloads_sorted_and_complete(self):
        names = available_workloads()
        assert names == sorted(names)
        assert {"w1", "zipfian", "bursty", "adversarial",
                "cache_hostile"} <= set(names)


def _toy_generator(n, seed):
    rng = np.random.default_rng(seed)
    return WeightedString(
        "".join("ab"[int(b)] for b in rng.integers(0, 2, size=n)),
        rng.uniform(0.1, 1.0, size=n),
    )


class TestRegistrationErrors:
    def test_duplicate_name_is_an_error(self):
        existing = available_scenarios()[0]
        with pytest.raises(ParameterError, match="already registered"):
            register_scenario(Scenario(
                name=existing, title="dup", description="dup",
                generator=_toy_generator, default_n=256, k_divisor=8,
                query_length_range=(1, 8),
            ))

    def test_unknown_workload_is_an_error(self):
        with pytest.raises(ParameterError, match="unregistered workloads"):
            register_scenario(Scenario(
                name="toy_bad_workload", title="t", description="t",
                generator=_toy_generator, default_n=256, k_divisor=8,
                query_length_range=(1, 8), workloads=("w1", "nope"),
            ))
        assert "toy_bad_workload" not in available_scenarios()

    def test_below_min_n_is_an_error(self):
        scenario = get_scenario(available_scenarios()[0])
        with pytest.raises(ParameterError, match="needs n >="):
            scenario.make(scenario.min_n - 1)

    def test_unregistered_workload_request_is_an_error(self):
        scenario = get_scenario("pathological")
        corpus = scenario.make(200)
        with pytest.raises(ParameterError, match="does not register"):
            scenario.build_workload(corpus, "no_such", 4)


class TestWorkloadSource:
    def test_collection_patterns_avoid_separator_codes(self):
        scenario = get_scenario("read_collection")
        corpus = scenario.make(600)
        source = scenario.workload_source(corpus)
        # The workload source is one original document: its codes are
        # all below the alphabet size, so no pattern can contain the
        # combined text's separator code.
        assert source.codes.max() < corpus.alphabet.size
        patterns = scenario.build_workload(corpus, "w1", 8)
        separator = corpus.alphabet.size
        for pattern in patterns:
            assert separator not in set(int(c) for c in pattern)

    def test_string_scenario_source_is_the_corpus(self):
        scenario = get_scenario("pathological")
        corpus = scenario.make(300)
        assert scenario.workload_source(corpus) is corpus
