"""Every exact backend == the naive oracle, on every scenario corpus.

The cross-cutting exactness property behind the matrix gate: for each
registered world, ``query_batch`` and ``count_batch`` of every exact
backend must equal the brute-force definition.  Collection worlds sum
the naive utility over documents (separators make cross-document
matches impossible, so the per-document sum *is* the collection
answer).
"""

import numpy as np
import pytest

import repro
from repro.api import get_backend
from repro.core.naive import naive_global_utility
from repro.datasets.scenarios import available_scenarios, get_scenario
from repro.strings.occurrences import naive_occurrences

N_SMALL = 300
N_COLLECTION = 600  # read_collection needs >= 128 and several reads
NUM_PATTERNS = 12


def _scenario_patterns(scenario, corpus):
    """A mixed probe set: w1 (frequent) + bursty + a few adversarial."""
    patterns = []
    patterns += scenario.build_workload(corpus, "w1", 6, seed=1)
    patterns += scenario.build_workload(corpus, "bursty", 3, seed=2)
    patterns += scenario.build_workload(corpus, "adversarial", 3, seed=3)
    return patterns[:NUM_PATTERNS]


def _naive_answers(scenario, corpus, patterns):
    if scenario.kind == "collection":
        documents = corpus.documents
        utilities = [
            sum(naive_global_utility(doc, p) for doc in documents)
            for p in patterns
        ]
        counts = [
            sum(len(naive_occurrences(doc.codes, np.asarray(p, dtype=np.int64)))
                for doc in documents)
            for p in patterns
        ]
    else:
        utilities = [naive_global_utility(corpus, p) for p in patterns]
        counts = [
            len(naive_occurrences(corpus.codes, np.asarray(p, dtype=np.int64)))
            for p in patterns
        ]
    return utilities, counts


@pytest.mark.parametrize("name", available_scenarios())
def test_exact_backends_match_naive_oracle(name):
    scenario = get_scenario(name)
    n = N_COLLECTION if scenario.kind == "collection" else N_SMALL
    corpus = scenario.make(n, seed=0)
    patterns = _scenario_patterns(scenario, corpus)
    expected_utilities, expected_counts = _naive_answers(
        scenario, corpus, patterns
    )

    for backend_name in scenario.backends():
        backend = get_backend(backend_name)
        if backend.capabilities.approximate:
            continue  # uat rides the matrix but holds no exactness claim
        index = repro.build(corpus, backend=backend_name, k=scenario.default_k(n))
        answers = index.query_batch(patterns)
        assert np.allclose(answers, expected_utilities, rtol=1e-9, atol=1e-9), (
            f"{name}/{backend_name}: query_batch diverged from the naive oracle"
        )
        if backend.capabilities.count:
            counts = index.count_batch(patterns)
            assert [int(c) for c in counts] == expected_counts, (
                f"{name}/{backend_name}: count_batch diverged"
            )
