"""Cache-hostile workloads defeat every caching layer — by design.

The ``cache_hostile`` family emits a stream of *content-distinct*
patterns, so the QueryEngine's LRU can never hit and the gateway
coalescer can never piggyback a follower.  These tests pin that
worst-case behaviour (and its inverse: hot repeats do hit/coalesce),
so a cache-key bug that collapses distinct patterns — or stops
recognising identical ones — fails loudly.
"""

import asyncio

import numpy as np
import pytest

import repro
from repro.datasets.scenarios import get_scenario
from repro.gateway.coalesce import Coalescer, coalesce_key
from repro.service.engine import QueryEngine

N = 800
NUM_QUERIES = 40


@pytest.fixture(scope="module")
def scenario_world():
    scenario = get_scenario("web_analytics")
    corpus = scenario.make(N, seed=0)
    index = repro.build(corpus, backend="usi", k=scenario.default_k(N))
    return scenario, corpus, index


class TestQueryEngineLru:
    def test_cache_hostile_stream_never_hits(self, scenario_world):
        scenario, corpus, index = scenario_world
        patterns = scenario.build_workload(
            corpus, "cache_hostile", NUM_QUERIES, seed=0
        )
        engine = QueryEngine(index, cache_size=4096)
        for pattern in patterns:
            engine.query(pattern)
        stats = engine.stats()
        assert stats["cache_misses"] == NUM_QUERIES
        assert stats["cache_hits"] == 0
        assert stats["hit_rate"] == 0.0

    def test_bursty_stream_does_hit(self, scenario_world):
        scenario, corpus, index = scenario_world
        patterns = scenario.build_workload(corpus, "bursty", NUM_QUERIES, seed=0)
        engine = QueryEngine(index, cache_size=4096)
        for pattern in patterns:
            engine.query(pattern)
        stats = engine.stats()
        # Bursts repeat one hot pattern back to back: most lookups hit.
        assert stats["cache_hits"] > 0
        assert stats["hit_rate"] > 0.3

    def test_patterns_are_content_distinct(self, scenario_world):
        scenario, corpus, _ = scenario_world
        patterns = scenario.build_workload(
            corpus, "cache_hostile", NUM_QUERIES, seed=0
        )
        seen = {np.asarray(p, dtype=np.int64).tobytes() for p in patterns}
        assert len(seen) == NUM_QUERIES


class TestGatewayCoalescer:
    def test_unique_stream_every_request_leads(self, scenario_world):
        scenario, corpus, _ = scenario_world
        patterns = scenario.build_workload(
            corpus, "cache_hostile", NUM_QUERIES, seed=0
        )

        async def drive():
            coalescer = Coalescer()
            for pattern in patterns:
                key = coalesce_key("idx", [tuple(int(c) for c in pattern)], False)
                future, leader = coalescer.lead_or_follow(key)
                assert leader
                coalescer.resolve(key, 0.0)
                await future
            return coalescer.stats()

        stats = asyncio.run(drive())
        # Round-trips == request count: nothing piggybacked.
        assert stats["leaders"] == NUM_QUERIES
        assert stats["followers"] == 0

    def test_identical_inflight_requests_coalesce(self, scenario_world):
        scenario, corpus, _ = scenario_world
        pattern = scenario.build_workload(corpus, "w1", 1, seed=0)[0]

        async def drive():
            coalescer = Coalescer()
            key = coalesce_key("idx", [tuple(int(c) for c in pattern)], False)
            leader_future, leader = coalescer.lead_or_follow(key)
            assert leader
            follower_future, follower_leads = coalescer.lead_or_follow(key)
            assert not follower_leads
            coalescer.resolve(key, 42.0)
            assert await leader_future == 42.0
            assert await follower_future == 42.0
            return coalescer.stats()

        stats = asyncio.run(drive())
        assert stats["leaders"] == 1
        assert stats["followers"] == 1
