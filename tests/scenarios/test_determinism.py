"""Determinism properties: same seed => byte-identical world.

The whole baseline-pinning scheme rests on generation being a pure
function of (n, seed); these properties check it for every registered
scenario and every registered workload.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.scenarios import available_scenarios, get_scenario
from repro.datasets.workloads import WORKLOADS

N_SMALL = 600  # >= every scenario's min_n, fast enough for properties

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _combined(scenario, corpus):
    return scenario.combined_view(corpus)


@pytest.mark.parametrize("name", available_scenarios())
class TestCorpusDeterminism:
    @settings(max_examples=5, deadline=None)
    @given(seed=seeds)
    def test_same_seed_same_bytes(self, name, seed):
        scenario = get_scenario(name)
        first = _combined(scenario, scenario.make(N_SMALL, seed=seed))
        second = _combined(scenario, scenario.make(N_SMALL, seed=seed))
        assert first.codes.tobytes() == second.codes.tobytes()
        assert first.utilities.tobytes() == second.utilities.tobytes()

    @settings(max_examples=3, deadline=None)
    @given(seed=seeds)
    def test_different_seeds_differ(self, name, seed):
        scenario = get_scenario(name)
        first = _combined(scenario, scenario.make(N_SMALL, seed=seed))
        second = _combined(scenario, scenario.make(N_SMALL, seed=seed + 1))
        # Utilities are continuous draws: a seed change must move them.
        assert (
            first.codes.tobytes() != second.codes.tobytes()
            or first.utilities.tobytes() != second.utilities.tobytes()
        )


@pytest.mark.parametrize("name", available_scenarios())
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
class TestWorkloadDeterminism:
    @settings(max_examples=3, deadline=None)
    @given(seed=seeds)
    def test_same_seed_same_patterns(self, name, workload, seed):
        scenario = get_scenario(name)
        corpus = scenario.make(N_SMALL, seed=0)
        first = scenario.build_workload(corpus, workload, 12, seed=seed)
        second = scenario.build_workload(corpus, workload, 12, seed=seed)
        assert len(first) == len(second) == 12
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
