"""Worker-pool failures: hangs, crashes, crash-loops, degraded modes.

The hardened-serving guarantees for the pool path, each proven under
an injected fault:

* a **hung** worker is killed at the per-call deadline — the caller
  gets :class:`WorkerHung`, never an unbounded wait, and the slot is
  respawned;
* a **crashed** worker costs one transparent gateway retry, not a
  client-visible error;
* a **crash-loop** trips the breaker: ``inline`` mode keeps answering
  byte-identically from an in-process engine, ``shed`` mode answers
  ``503`` + ``Retry-After``;
* either way ``/healthz`` says ``degraded`` while it lasts.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.faults import Fault, FaultPlan
from repro.gateway import AsyncGateway
from repro.gateway.pool import WorkerHung, WorkerPool

from tests.faults.conftest import PATTERNS


def _post(url: str, payload: dict) -> "tuple[int, bytes, dict]":
    request = urllib.request.Request(
        url + "/query",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def _get(url: str, path: str) -> "tuple[int, dict]":
    with urllib.request.urlopen(url + path, timeout=30) as response:
        return response.status, json.loads(response.read())


def _run(coroutine):
    return asyncio.run(coroutine)


class TestPoolDeadline:
    def test_hung_worker_is_killed_at_the_deadline(self, bundle_path):
        # The worker's 2nd request (hit 1) sleeps far past the per-call
        # deadline; the pool must kill it and fail fast, then serve the
        # next call from the respawned replacement (fresh hit counter).
        faults.install(
            FaultPlan([Fault("worker.handle", "hang", after=1, seconds=30.0)])
        )

        async def scenario():
            pool = WorkerPool(
                {"demo": bundle_path}, workers=1, call_timeout=0.5
            )
            await pool.start()
            try:
                message = {"op": "query", "index": "demo",
                           "patterns": ["abra"], "count": False}
                first = await pool.call(message)
                assert first["ok"]

                t0 = time.perf_counter()
                with pytest.raises(WorkerHung):
                    await pool.call(message)
                elapsed = time.perf_counter() - t0
                assert elapsed < 5.0  # deadline, not the 30s hang
                assert pool.timeouts == 1

                after = await pool.call(message)  # replacement worker
                assert after["utilities"] == first["utilities"]
                assert pool.restarts == 1
            finally:
                await pool.stop()

        _run(scenario())

    def test_stop_is_bounded_with_a_hung_worker_outstanding(self, bundle_path):
        # Satellite regression: a worker that was hung *and* replaced
        # must not wedge stop() — the double-checkout used to leave a
        # phantom entry that drain waited on forever.
        faults.install(
            FaultPlan([Fault("worker.handle", "hang", after=0, seconds=30.0)])
        )

        async def scenario():
            pool = WorkerPool(
                {"demo": bundle_path}, workers=1, call_timeout=0.3
            )
            await pool.start()
            message = {"op": "query", "index": "demo",
                       "patterns": ["abra"], "count": False}
            with pytest.raises(WorkerHung):
                await pool.call(message)
            t0 = time.perf_counter()
            await pool.stop(timeout=5.0)
            assert time.perf_counter() - t0 < 10.0
            assert pool.alive_workers == 0

        _run(scenario())


class TestGatewayRetry:
    def test_worker_crash_is_one_transparent_retry(self, bundle_path):
        # The worker crashes on its 2nd request; the gateway retries on
        # the respawned worker (hit counter back at 0) and the client
        # sees 200 both times.
        faults.install(
            FaultPlan([Fault("worker.handle", "crash", after=1)])
        )
        gateway = AsyncGateway(
            paths={"demo": bundle_path}, workers=1, port=0,
            call_timeout=10.0,
        )
        with gateway.start_in_thread() as handle:
            status, first, _ = _post(handle.url, {"pattern": "abra"})
            assert status == 200
            status, second, _ = _post(handle.url, {"pattern": "abra"})
            assert status == 200
            assert second == first
            assert gateway.pool_retries == 1
            assert gateway.pool.restarts == 1


class TestCrashLoopDegradation:
    def _crash_loop_plan(self) -> FaultPlan:
        # Every worker (original or respawned) crashes on every
        # request: the pool can never answer, only the breaker can end
        # the carnage.
        return FaultPlan(
            [Fault("worker.handle", "crash", after=0, count=math.inf)]
        )

    def test_inline_mode_keeps_answering_exactly(self, bundle_path):
        from repro.api import open_index
        from repro.service.engine import QueryEngine

        reference = QueryEngine(open_index(bundle_path, mmap=True))
        faults.install(self._crash_loop_plan())
        gateway = AsyncGateway(
            paths={"demo": bundle_path}, workers=2, port=0,
            call_timeout=10.0, degraded_mode="inline",
        )
        with gateway.start_in_thread() as handle:
            for pattern in PATTERNS:
                status, body, _ = _post(handle.url, {"pattern": pattern})
                assert status == 200
                (row,) = json.loads(body)["results"]
                assert row["utility"] == reference.query_batch([pattern])[0]
            assert gateway.degraded_queries == len(PATTERNS)
            # Enough consecutive failures to trip the default breaker.
            assert gateway.pool.breaker.state != "closed"
            status, health = _get(handle.url, "/healthz")
            assert health["status"] == "degraded"
            assert any("breaker" in reason for reason in health["reasons"])

    def test_shed_mode_answers_503_with_retry_after(self, bundle_path):
        faults.install(self._crash_loop_plan())
        gateway = AsyncGateway(
            paths={"demo": bundle_path}, workers=1, port=0,
            call_timeout=10.0, degraded_mode="shed",
        )
        with gateway.start_in_thread() as handle:
            status, body, headers = _post(handle.url, {"pattern": "abra"})
            assert status == 503
            assert "unavailable" in json.loads(body)["error"]
            assert int(headers["Retry-After"]) >= 1


class TestRequestDeadline:
    def test_hung_pool_call_becomes_a_504_not_a_hang(self, bundle_path):
        # call_timeout disabled: the pool itself would wait out the
        # full 30s hang, so only the gateway-wide request deadline
        # stands between the client and a hung connection.
        faults.install(
            FaultPlan([Fault("worker.handle", "hang", after=0,
                             count=math.inf, seconds=30.0)])
        )
        gateway = AsyncGateway(
            paths={"demo": bundle_path}, workers=1, port=0,
            call_timeout=None, request_timeout=1.0, coalesce=False,
        )
        with gateway.start_in_thread() as handle:
            t0 = time.perf_counter()
            status, body, _ = _post(handle.url, {"pattern": "abra"})
            elapsed = time.perf_counter() - t0
            assert status == 504
            assert "deadline" in json.loads(body)["error"]
            assert elapsed < 10.0
            assert gateway.deadline_timeouts == 1
