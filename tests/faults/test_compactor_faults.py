"""Compactor crash containment: retries, quarantine, serving never stops.

A shard build that blows up must cost nothing but background work: the
sealed memtable keeps answering (exactly), the build retries with
backoff, and a memtable whose build *keeps* failing is quarantined —
still queryable, never compacted again, its WAL range never pruned.
"""

from __future__ import annotations

import math

from repro import faults
from repro.faults import Fault, FaultPlan
from repro.ingest import Compactor, LiveIndex
from repro.ingest.wal import WriteAheadLog, replay_all
from repro.service.resilience import Backoff

from tests.ingest.test_live import ALPHABET, K, assert_matches_monolithic


def make_live(**options):
    options.setdefault("k", K)
    options.setdefault("seal_chars", 4)
    return LiveIndex(ALPHABET, **options)


def fast_backoff() -> Backoff:
    return Backoff(base=0.0001, max_delay=0.0002, jitter=0.0)


class TestBuildRetry:
    def test_one_build_failure_is_retried_to_success(self):
        faults.install(FaultPlan([Fault("compactor.build", "error")]))
        live = make_live()
        docs = [("abab", None), ("bb", None)]
        for text, _ in docs:
            live.append_document(text)
        compactor = Compactor(live, backoff=fast_backoff())

        assert compactor.run_once() is False  # build blew up
        assert compactor.build_failures == 1
        assert compactor.stats()["pending_builds"] == 1
        # Serving was never interrupted: the frozen memtable answers.
        assert_matches_monolithic(live, docs)

        assert compactor.run_once() is True  # retry succeeds
        assert compactor.retries == 1
        assert compactor.compactions == 1
        assert compactor.quarantines == 0
        assert live.shard_count == 1
        assert_matches_monolithic(live, docs)

    def test_retry_waits_out_the_backoff(self):
        faults.install(FaultPlan([Fault("compactor.build", "error")]))
        clock = [0.0]
        live = make_live()
        live.append_document("abab")
        compactor = Compactor(
            live,
            backoff=Backoff(base=10.0, max_delay=10.0, jitter=0.0),
            clock=lambda: clock[0],
        )
        assert compactor.run_once() is False
        assert compactor.run_once() is False  # still inside the backoff
        assert compactor.retries == 0
        clock[0] = 11.0
        assert compactor.run_once() is True
        assert compactor.retries == 1


class TestQuarantine:
    def test_poison_memtable_is_quarantined_not_fatal(self):
        faults.install(FaultPlan([
            Fault("compactor.build", "error", count=math.inf),
        ]))
        live = make_live()
        docs = [("abab", None), ("bb", None)]
        for text, _ in docs:
            live.append_document(text)
        clock = [0.0]
        compactor = Compactor(
            live, max_build_attempts=3, backoff=fast_backoff(),
            clock=lambda: clock[0],
        )
        for _ in range(5):
            clock[0] += 1.0  # every pending retry is due each cycle
            compactor.run_once()
        assert compactor.quarantines == 1
        assert compactor.stats()["pending_builds"] == 0
        assert live.ingest_stats()["quarantined"] == 1
        # Quarantined documents still answer, exactly.
        assert_matches_monolithic(live, docs)

        # The compactor is not wedged: later generations compact fine.
        faults.clear()
        for text in ("aab", "ba"):
            live.append_document(text)
            docs.append((text, None))
        assert compactor.run_once(force=True) is True
        assert live.shard_count == 1
        assert_matches_monolithic(live, docs)

    def test_quarantined_wal_range_survives_later_pruning(self, tmp_path):
        # The quarantined memtable's documents live only in the WAL and
        # the delta structure; pruning after *later* compactions must
        # keep its segments so a restart replays them.
        faults.install(FaultPlan([
            Fault("compactor.build", "error", count=2),
        ]))
        live = LiveIndex.create(tmp_path / "live", ALPHABET, k=K, seal_chars=4)
        live.append_document("abab")
        clock = [0.0]
        compactor = Compactor(live, max_build_attempts=2,
                              backoff=fast_backoff(),
                              clock=lambda: clock[0])
        for _ in range(3):
            clock[0] += 1.0
            compactor.run_once(force=True)
        assert compactor.quarantines == 1
        faults.clear()
        live.append_document("bb")
        assert compactor.run_once(force=True) is True  # prunes upto its seq
        replayed = [
            r.seq for r in replay_all(WriteAheadLog(tmp_path / "live" / "wal"))
        ]
        assert 1 in replayed  # the quarantined doc's record survived
        live.close()

        reopened = LiveIndex.open(tmp_path / "live")
        assert reopened.query("abab") > 0.0
        assert reopened.query("bb") > 0.0
        reopened.close()


class TestBackgroundThread:
    def test_build_faults_never_kill_the_compactor_thread(self):
        faults.install(FaultPlan([Fault("compactor.build", "error", count=2)]))
        live = make_live(seal_chars=8)
        docs = []
        with Compactor(live, interval=0.005, backoff=fast_backoff()):
            import time

            for i in range(20):
                text = "abab" if i % 2 else "bba"
                live.append_document(text)
                docs.append((text, None))
                time.sleep(0.002)
            deadline = time.time() + 10
            while live.shard_count == 0 and time.time() < deadline:
                time.sleep(0.01)
        assert live.shard_count >= 1  # recovered and compacted
        assert_matches_monolithic(live, docs)
