"""Registry load failures: IndexLoadError, 503 + Retry-After, recovery.

A registered index whose backing file fails to load (vanished network
mount, recovering disk) is a *transient* serving error, not a crash:
both front-ends answer ``503`` with ``Retry-After`` and the next
request retries the load from scratch.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.errors import IndexLoadError
from repro.faults import Fault, FaultPlan
from repro.service.registry import IndexRegistry
from repro.service.server import UsiServer


class TestRegistryLoad:
    def test_load_failure_raises_index_load_error(self, bundle_path):
        faults.install(FaultPlan([Fault("registry.load", "error")]))
        registry = IndexRegistry()
        registry.register_path("demo", bundle_path)
        with pytest.raises(IndexLoadError, match="demo"):
            registry.get("demo")
        assert registry.stats()["load_failures"] == 1
        # The fault window closed: the next get retries and succeeds.
        engine = registry.get("demo")
        assert engine.query("abra") > 0.0
        registry.close()

    def test_real_loader_errors_wrap_too(self, tmp_path):
        registry = IndexRegistry()
        bogus = tmp_path / "bogus.npz"
        bogus.write_bytes(b"this is not an index bundle")
        registry.register_path("bogus", bogus)
        with pytest.raises(IndexLoadError, match="bogus"):
            registry.get("bogus")
        assert registry.stats()["load_failures"] == 1


class TestThreadedServer:
    def test_query_gets_503_with_retry_after_then_recovers(self, bundle_path):
        faults.install(FaultPlan([Fault("registry.load", "error")]))
        registry = IndexRegistry()
        registry.register_path("demo", bundle_path)
        with UsiServer(registry, port=0) as server:
            request = urllib.request.Request(
                server.url + "/query",
                data=json.dumps({"pattern": "abra"}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "1"
            assert "demo" in json.loads(excinfo.value.read())["error"]
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 200
                (row,) = json.loads(response.read())["results"]
                assert row["utility"] > 0.0
            # The failed load shows up in /stats for operators.
            with urllib.request.urlopen(
                server.url + "/stats", timeout=30
            ) as response:
                stats = json.loads(response.read())
            assert stats["registry"]["load_failures"] == 1
