"""WAL write failures: disk-full, torn tails, recovery, ingest 503s.

The durability contract under failure: an append that raises was
**not** acknowledged — the memtable is untouched, the sequence number
unconsumed, and replay after restart yields exactly the acknowledged
documents.  A torn tail (half a record on disk) is self-healed by the
next append, or truncated by replay if the process dies first.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.faults import Fault, FaultPlan
from repro.ingest import LiveIndex
from repro.ingest.wal import WriteAheadLog, replay_all
from repro.strings.alphabet import Alphabet

ALPHABET = Alphabet("ab")


def _live(tmp_path) -> LiveIndex:
    return LiveIndex.create(tmp_path / "live", ALPHABET, k=8)


def _seqs(directory) -> list[int]:
    return [r.seq for r in replay_all(WriteAheadLog(directory / "live" / "wal"))]


class TestDiskFull:
    def test_failed_append_leaves_the_memtable_consistent(self, tmp_path):
        faults.install(FaultPlan([
            Fault("wal.append", "error", after=1,
                  error=OSError(28, "No space left on device")),
        ]))
        live = _live(tmp_path)
        assert live.append_document("abab") == 1
        with pytest.raises(OSError):
            live.append_document("bb")
        # Not acknowledged: no sequence consumed, answers unchanged.
        assert live.last_seq == 1
        assert live.query("bb") == 0.0
        # The disk recovered: the same document simply retries.
        assert live.append_document("bb") == 2
        assert live.query("bb") > 0.0
        live.close()
        assert _seqs(tmp_path) == [1, 2]

    def test_replay_after_disk_full_has_only_acknowledged_docs(self, tmp_path):
        faults.install(FaultPlan([
            Fault("wal.append", "error", after=1,
                  error=OSError(28, "No space left on device")),
        ]))
        live = _live(tmp_path)
        live.append_document("ab")
        with pytest.raises(OSError):
            live.append_document("ba")
        live.close()
        faults.clear()
        reopened = LiveIndex.open(tmp_path / "live")
        assert reopened.last_seq == 1
        assert reopened.query("ab") > 0.0
        assert reopened.query("ba") == 0.0
        reopened.close()


class TestTornTail:
    def test_next_append_repairs_the_torn_tail(self, tmp_path):
        faults.install(FaultPlan([Fault("wal.append", "torn", after=1)]))
        live = _live(tmp_path)
        live.append_document("abab")
        with pytest.raises(OSError, match="torn"):
            live.append_document("bb")
        assert live.last_seq == 1
        # The next append truncates the half-written record and reuses
        # the segment; replay sees a clean, gap-free sequence.
        assert live.append_document("aab") == 2
        live.close()
        assert _seqs(tmp_path) == [1, 2]

    def test_crash_before_repair_is_truncated_by_replay(self, tmp_path):
        faults.install(FaultPlan([Fault("wal.append", "torn", after=1)]))
        live = _live(tmp_path)
        live.append_document("abab")
        with pytest.raises(OSError, match="torn"):
            live.append_document("bb")
        live.close()  # process dies with the torn tail still on disk
        faults.clear()
        reopened = LiveIndex.open(tmp_path / "live")
        assert reopened.last_seq == 1
        assert reopened.query("abab") > 0.0
        # Recovery leaves a clean tail: appends continue from seq 2.
        assert reopened.append_document("bb") == 2
        reopened.close()
        assert _seqs(tmp_path) == [1, 2]

    def test_short_write_bytes_really_hit_the_disk(self, tmp_path):
        # The torn fault must leave a genuinely truncated frame (not
        # just raise): this is what replay's tail-truncation handles.
        faults.install(FaultPlan([Fault("wal.append", "torn", after=0)]))
        log = WriteAheadLog(tmp_path / "wal")
        with pytest.raises(OSError):
            log.append(1, [0, 1])
        faults.clear()
        (segment,) = log.segments()
        assert 0 < segment.stat().st_size
        assert not segment.read_bytes().endswith(b"\n")
        # Repair on the next append: the garbage is gone.
        log.append(1, [0, 1])
        log.close()
        assert [r.seq for r in replay_all(WriteAheadLog(tmp_path / "wal"))] == [1]


class TestIngestEndpoint:
    def test_post_ingest_gets_503_with_retry_after(self, tmp_path):
        from repro.service.registry import IndexRegistry
        from repro.service.server import UsiServer

        faults.install(FaultPlan([
            Fault("wal.append", "error", after=0,
                  error=OSError(28, "No space left on device")),
        ]))
        live = _live(tmp_path)
        registry = IndexRegistry()
        registry.register("corpus", live)
        with UsiServer(registry, port=0) as server:
            request = urllib.request.Request(
                server.url + "/ingest",
                data=json.dumps({"doc": "abab"}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "1"
            assert "unavailable" in json.loads(excinfo.value.read())["error"]
            # The fault window closed: the retried ingest succeeds and
            # the memtable was never corrupted by the failed attempt.
            with urllib.request.urlopen(request, timeout=10) as response:
                assert json.loads(response.read())["seq"] == 1
        assert live.query("abab") > 0.0
