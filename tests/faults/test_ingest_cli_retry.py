"""The ``usi ingest`` client under server failures: retry, then give up.

A transient 503 (WAL write failure, draining) or a connection blip
must not kill an ingest stream — the client honors ``Retry-After`` and
retries with capped backoff up to ``--max-retries`` per document.  A
hard 400 stops immediately, and a dead server fails cleanly once the
retries are spent.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.cli import main
from repro.faults import Fault, FaultPlan
from repro.ingest import LiveIndex
from repro.service.registry import IndexRegistry
from repro.service.server import UsiServer
from repro.strings.alphabet import Alphabet

ALPHABET = Alphabet("ab")


@pytest.fixture()
def docs_file(tmp_path):
    path = tmp_path / "docs.txt"
    path.write_text("abab\nbb\n")
    return path


class TestRetries:
    def test_503_is_retried_to_success(self, tmp_path, docs_file, capsys):
        # The very first WAL append fails disk-full: the server answers
        # 503 + Retry-After and the client re-sends the same document.
        faults.install(FaultPlan([
            Fault("wal.append", "error",
                  error=OSError(28, "No space left on device")),
        ]))
        live = LiveIndex.create(tmp_path / "live", ALPHABET, k=8)
        registry = IndexRegistry()
        registry.register("corpus", live)
        with UsiServer(registry, port=0) as server:
            code = main([
                "ingest", "--url", server.url, "--file", str(docs_file),
            ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ingested 2 documents (last seq 2) (1 retried)" in out
        assert live.query("abab") > 0.0
        assert live.query("bb") > 0.0

    def test_exhausted_retries_fail_cleanly(self, docs_file, capsys):
        # Nothing listens here: connection errors retry with backoff,
        # then the stream stops with a clean diagnostic, not a traceback.
        code = main([
            "ingest", "--url", "http://127.0.0.1:9",
            "--file", str(docs_file), "--max-retries", "1", "--timeout", "1",
        ])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_hard_400_is_not_retried(self, tmp_path, docs_file, capsys):
        # A static index never ingests: the 400 must stop the stream
        # immediately (no retry storm against a permanent rejection).
        import repro

        registry = IndexRegistry()
        registry.register("static", repro.build("abab", k=4, backend="usi"))
        with UsiServer(registry, port=0) as server:
            code = main([
                "ingest", "--url", server.url, "--file", str(docs_file),
            ])
        assert code == 1
        err = capsys.readouterr().err
        assert "rejected document 1" in err
