"""The fault plan itself: windows, kinds, determinism, zero-cost off."""

from __future__ import annotations

import math

import pytest

from repro import faults
from repro.errors import ParameterError
from repro.faults import Fault, FaultPlan, chaos_plan, scenario_faults
from repro.faults.schedule import SCENARIOS


class TestFire:
    def test_no_plan_installed_is_a_no_op(self):
        assert faults.active_plan() is None
        assert faults.fire("worker.handle") is None

    def test_error_fires_inside_its_window_only(self):
        plan = FaultPlan([Fault("wal.append", "error", after=1, count=2)])
        plan.fire("wal.append")  # hit 0: before the window
        with pytest.raises(OSError):
            plan.fire("wal.append")  # hit 1
        with pytest.raises(OSError):
            plan.fire("wal.append")  # hit 2
        assert plan.fire("wal.append") is None  # hit 3: window closed
        assert plan.hits("wal.append") == 4
        assert [f["hit"] for f in plan.fired()] == [1, 2]

    def test_sites_count_independently(self):
        plan = FaultPlan([Fault("a", "error")])
        assert plan.fire("b") is None
        with pytest.raises(OSError):
            plan.fire("a")
        assert plan.hits("a") == 1
        assert plan.hits("b") == 1

    def test_custom_error_instances_are_copied_per_fire(self):
        template = OSError(28, "No space left on device")
        plan = FaultPlan([Fault("w", "error", count=2, error=template)])
        with pytest.raises(OSError) as first:
            plan.fire("w")
        with pytest.raises(OSError) as second:
            plan.fire("w")
        assert first.value is not second.value
        assert first.value.errno == second.value.errno == 28

    def test_slow_sleeps_then_proceeds(self):
        plan = FaultPlan([Fault("ipc.send", "slow", seconds=1.25)])
        slept = []
        plan._sleep = slept.append
        assert plan.fire("ipc.send") is None  # proceeds after the sleep
        assert slept == [1.25]

    def test_torn_is_returned_for_the_site_to_interpret(self):
        fault = Fault("wal.append", "torn")
        plan = FaultPlan([fault])
        assert plan.fire("wal.append") is fault

    def test_infinite_count_never_closes(self):
        plan = FaultPlan([Fault("w", "error", count=math.inf)])
        for _ in range(10):
            with pytest.raises(OSError):
                plan.fire("w")

    def test_unknown_kind_and_bad_window_are_rejected(self):
        with pytest.raises(ParameterError):
            Fault("w", "explode")
        with pytest.raises(ParameterError):
            Fault("w", "error", after=-1)
        with pytest.raises(ParameterError):
            Fault("w", "error", count=0)


class TestInstall:
    def test_injected_clears_even_on_failure(self):
        plan = FaultPlan([Fault("w", "error")])
        with pytest.raises(RuntimeError):
            with faults.injected(plan):
                assert faults.active_plan() is plan
                raise RuntimeError("test body blew up")
        assert faults.active_plan() is None

    def test_fire_routes_through_the_installed_plan(self):
        plan = FaultPlan([Fault("w", "error")])
        with faults.injected(plan):
            with pytest.raises(OSError):
                faults.fire("w")
        assert plan.hits("w") == 1


class TestSchedules:
    def test_same_seed_same_schedule(self):
        plan_a, chosen_a = chaos_plan(seed=7)
        plan_b, chosen_b = chaos_plan(seed=7)
        assert chosen_a == chosen_b
        assert [f.describe() for f in plan_a.faults] == [
            f.describe() for f in plan_b.faults
        ]

    def test_different_seeds_differ_somewhere(self):
        schedules = {
            tuple(chaos_plan(seed=s)[1]) for s in range(20)
        }
        assert len(schedules) > 1

    def test_every_scenario_produces_valid_faults(self):
        import random

        for name in SCENARIOS:
            for fault in scenario_faults(name, random.Random(3)):
                assert fault.kind in faults.KINDS

    def test_unknown_scenario_is_rejected(self):
        import random

        with pytest.raises(ValueError):
            scenario_faults("meteor_strike", random.Random(0))

    def test_hangs_outlast_the_requested_deadline(self):
        # The schedule contract: a hang always sleeps hang_seconds, so
        # harnesses can pick hang_seconds > call_timeout and know the
        # kill path (not the wait path) resolves it.
        import random

        (fault,) = scenario_faults(
            "worker_hang", random.Random(1), hang_seconds=12.5
        )
        assert fault.kind == "hang"
        assert fault.seconds == 12.5
