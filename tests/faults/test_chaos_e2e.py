"""Seeded chaos against the full gateway: the three hard invariants.

Each seed deterministically generates a fault storm (hangs, crashes,
crash-loops, slow IPC) and drives real HTTP traffic through it.  The
hardened serving stack must hold, for every seed:

1. **No request hangs**: every response lands well inside the
   gateway-wide deadline plus scheduling slack.
2. **Exact answers**: every 200 body is byte-identical to a
   single-process reference engine over the same bundle — faults may
   cost latency or a clean error, never a wrong answer.
3. **Full recovery**: once the fault plan is cleared, the gateway
   returns to ``/healthz`` ``status: ok`` and keeps answering exactly.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.api import open_index
from repro.faults import chaos_plan
from repro.gateway import AsyncGateway
from repro.service.engine import QueryEngine

from tests.faults.conftest import PATTERNS

#: Gateway-path scenarios only (WAL/compactor storms have their own
#: dedicated tests; a pool-only gateway never hits those sites).
GATEWAY_SCENARIOS = (
    "worker_hang",
    "worker_crash",
    "worker_crash_loop",
    "slow_ipc",
)

CALL_TIMEOUT = 0.5
REQUEST_TIMEOUT = 5.0
#: Deadline plus generous scheduler slack: the "never hangs" invariant.
LATENCY_CEILING = REQUEST_TIMEOUT + 5.0
REQUESTS_PER_SEED = 24
RECOVERY_DEADLINE = 60.0


def _post(url: str, payload: dict, timeout: float):
    request = urllib.request.Request(
        url + "/query",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _expected_body(engine, pattern: str) -> bytes:
    rows = [{"pattern": pattern, "utility": engine.query_batch([pattern])[0]}]
    return json.dumps({"index": "demo", "results": rows}).encode()


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_chaos_invariants_hold(bundle_path, seed):
    reference = QueryEngine(open_index(bundle_path, mmap=True))
    plan, scenarios = chaos_plan(
        seed, scenarios=GATEWAY_SCENARIOS, hang_seconds=30.0
    )
    faults.install(plan)
    gateway = AsyncGateway(
        paths={"demo": bundle_path},
        workers=2,
        port=0,
        call_timeout=CALL_TIMEOUT,
        request_timeout=REQUEST_TIMEOUT,
        degraded_mode="inline",
    )
    with gateway.start_in_thread() as handle:
        # ------------------------------------------------------------
        # Phase 1 — traffic through the storm.
        # ------------------------------------------------------------
        statuses = []
        for i in range(REQUESTS_PER_SEED):
            pattern = PATTERNS[i % len(PATTERNS)]
            t0 = time.perf_counter()
            status, body = _post(
                handle.url, {"pattern": pattern}, timeout=LATENCY_CEILING + 5
            )
            elapsed = time.perf_counter() - t0
            statuses.append(status)
            # Invariant 1: nothing outlives the deadline (plus slack).
            assert elapsed < LATENCY_CEILING, (
                f"seed {seed} ({scenarios}): request {i} took {elapsed:.1f}s"
            )
            # Invariant 2: a 200 is byte-exact; errors are clean JSON.
            if status == 200:
                assert body == _expected_body(reference, pattern), (
                    f"seed {seed} ({scenarios}): wrong answer for {pattern!r}"
                )
            else:
                assert status in (503, 504), (
                    f"seed {seed} ({scenarios}): unexpected status {status}"
                )
                assert "error" in json.loads(body)
        # Inline degraded mode means the vast majority still answer.
        assert statuses.count(200) >= REQUESTS_PER_SEED // 2

        # ------------------------------------------------------------
        # Phase 2 — the storm ends; the system must heal completely.
        # Workers forked while the plan was installed still carry it,
        # so keep probing: each breaker probe drains one poisoned
        # worker until a clean one closes the breaker.
        # ------------------------------------------------------------
        faults.clear()
        deadline = time.monotonic() + RECOVERY_DEADLINE
        healthy = False
        while time.monotonic() < deadline:
            _post(handle.url, {"pattern": "abra"}, timeout=LATENCY_CEILING)
            with urllib.request.urlopen(
                handle.url + "/healthz", timeout=10
            ) as response:
                health = json.loads(response.read())
            if health["status"] == "ok":
                healthy = True
                break
            time.sleep(0.2)
        # Invariant 3: back to full health, still answering exactly.
        assert healthy, f"seed {seed} ({scenarios}): never recovered: {health}"
        status, body = _post(handle.url, {"pattern": "abra"}, timeout=30)
        assert status == 200
        assert body == _expected_body(reference, "abra")
        assert gateway.pool.breaker.state == "closed"
        assert gateway.pool.alive_workers == 2
