"""Shared fixtures for the fault-injection / chaos suite.

Every test here installs a process-global :class:`FaultPlan`; the
autouse fixture guarantees no plan outlives its test, so one failing
chaos test can never leak faults into the rest of the run.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.api import build
from repro.io import save_index

TEXT = "abracadabra banana cabana abracadabra bandana " * 30

#: Probe patterns covering hits, misses, and repeats in TEXT.
PATTERNS = ["abra", "banana", "cab", "a", "zzz", "bandana", "br"]


@pytest.fixture(autouse=True)
def no_leaked_faults():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="session")
def bundle_path(tmp_path_factory):
    """A v3 (mmap-openable) bundle the pool/gateway tests reopen."""
    path = tmp_path_factory.mktemp("faults") / "demo.npz"
    save_index(build(TEXT, k=16), path, container="v3")
    return path
