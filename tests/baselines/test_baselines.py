"""Tests for BSL1-BSL4: all are exact; they differ only in caching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    Bsl1NoCache,
    Bsl2LruCache,
    Bsl3TopKSeen,
    Bsl4SketchTopKSeen,
    SaPswEngine,
)
from repro.core.naive import naive_global_utility
from repro.errors import ParameterError, PatternError
from repro.strings.weighted import WeightedString

from tests.conftest import weighted_strings

ALL_BASELINES = [
    lambda ws: Bsl1NoCache(ws),
    lambda ws: Bsl2LruCache(ws, capacity=4),
    lambda ws: Bsl3TopKSeen(ws, capacity=4),
    lambda ws: Bsl4SketchTopKSeen(ws, capacity=4),
]


class TestEngine:
    def test_compute_matches_naive(self, paper_example):
        engine = SaPswEngine(paper_example)
        codes = paper_example.alphabet.encode("TACCCC").astype(np.int64)
        assert engine.compute(codes) == pytest.approx(14.6)

    def test_encode_rejects_empty(self, paper_example):
        engine = SaPswEngine(paper_example)
        with pytest.raises(PatternError):
            engine.encode("")

    def test_encode_unknown_letter_none(self, paper_example):
        assert SaPswEngine(paper_example).encode("XYZ") is None

    def test_fingerprint_stable(self, paper_example):
        engine = SaPswEngine(paper_example)
        codes = paper_example.alphabet.encode("TAC").astype(np.int64)
        assert engine.fingerprint(codes) == engine.fingerprint(codes)

    def test_nbytes_positive(self, paper_example):
        assert SaPswEngine(paper_example).nbytes() > 0


class TestAllBaselinesExact:
    @pytest.mark.parametrize("make", ALL_BASELINES)
    def test_example_1(self, paper_example, make):
        baseline = make(paper_example)
        assert baseline.query("TACCCC") == pytest.approx(14.6)

    @pytest.mark.parametrize("make", ALL_BASELINES)
    def test_absent_and_unknown_patterns(self, paper_example, make):
        baseline = make(paper_example)
        assert baseline.query("CCCCCC") == 0.0
        assert baseline.query("QQ") == 0.0

    @pytest.mark.parametrize("make", ALL_BASELINES)
    def test_repeated_queries_stay_correct(self, paper_example, make):
        """Caching must never change answers."""
        baseline = make(paper_example)
        patterns = ["TACCCC", "A", "AT", "CCCC", "TACCCC", "A", "G", "TACCCC"]
        for pattern in patterns:
            assert baseline.query(pattern) == pytest.approx(
                naive_global_utility(paper_example, pattern)
            ), pattern

    @given(weighted_strings(max_size=25))
    @settings(max_examples=15, deadline=None)
    def test_all_agree_property(self, ws):
        baselines = [make(ws) for make in ALL_BASELINES]
        text = ws.text()
        probes = [text[:1], text[:2], text[-2:], text[: len(text) // 2 + 1]]
        for pattern in probes:
            if not pattern:
                continue
            values = [b.query(pattern) for b in baselines]
            want = naive_global_utility(ws, pattern)
            for value in values:
                assert value == pytest.approx(want, abs=1e-6)


class TestCachePolicies:
    def test_bsl2_lru_eviction(self):
        ws = WeightedString.uniform("ABCDEFGH")
        baseline = Bsl2LruCache(ws, capacity=2)
        baseline.query("A")
        baseline.query("B")
        baseline.query("C")  # evicts "A"
        assert baseline.cache_size == 2
        misses = baseline.misses
        baseline.query("A")  # must recompute
        assert baseline.misses == misses + 1

    def test_bsl2_hit_counting(self):
        ws = WeightedString.uniform("ABCD")
        baseline = Bsl2LruCache(ws, capacity=4)
        baseline.query("A")
        baseline.query("A")
        assert baseline.hits == 1
        assert baseline.misses == 1

    def test_bsl3_keeps_frequently_queried(self):
        ws = WeightedString.uniform("ABCDEFGH")
        baseline = Bsl3TopKSeen(ws, capacity=2)
        for _ in range(5):
            baseline.query("A")
        for _ in range(4):
            baseline.query("B")
        for letter in "CDEFG":  # one-off queries must not evict A or B
            baseline.query(letter)
        hits = baseline.hits
        baseline.query("A")
        baseline.query("B")
        assert baseline.hits == hits + 2

    def test_bsl3_capacity(self):
        ws = WeightedString.uniform("ABCDEFGH")
        baseline = Bsl3TopKSeen(ws, capacity=3)
        for letter in "ABCDEFGH":
            baseline.query(letter)
        assert baseline.cache_size <= 3

    def test_bsl4_capacity(self):
        ws = WeightedString.uniform("ABCDEFGH")
        baseline = Bsl4SketchTopKSeen(ws, capacity=3)
        for letter in "ABCDEFGH" * 3:
            baseline.query(letter)
        assert baseline.cache_size <= 3

    def test_bsl4_sketch_smaller_than_exact_counts(self):
        """BSL4's point: auxiliary space does not grow with distinct queries."""
        ws = WeightedString.uniform("ABCDEFGH" * 20)
        bsl3 = Bsl3TopKSeen(ws, capacity=2)
        bsl4 = Bsl4SketchTopKSeen(ws, capacity=2, sketch_width=64, sketch_depth=2)
        rng = np.random.default_rng(0)
        text = ws.text()
        for _ in range(200):
            start = int(rng.integers(0, len(text) - 3))
            pattern = text[start : start + 3]
            bsl3.query(pattern)
            bsl4.query(pattern)
        # BSL3 tracks every distinct query; BSL4's sketch is fixed-size.
        assert bsl4._sketch.nbytes() == 64 * 2 * 8

    @pytest.mark.parametrize("cls", [Bsl2LruCache, Bsl3TopKSeen, Bsl4SketchTopKSeen])
    def test_zero_capacity_rejected(self, cls):
        ws = WeightedString.uniform("AB")
        with pytest.raises(ParameterError):
            cls(ws, capacity=0)

    @pytest.mark.parametrize("make", ALL_BASELINES)
    def test_nbytes_positive(self, paper_example, make):
        assert make(paper_example).nbytes() > 0
