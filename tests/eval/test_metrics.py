"""Tests for the evaluation metrics, harness, and reporting."""

import numpy as np
import pytest

from repro.core.approximate import ApproximateTopK
from repro.core.exact_topk import exact_top_k
from repro.core.topk_oracle import TopKOracle
from repro.core.types import MinedSubstring
from repro.errors import ParameterError
from repro.eval.harness import MinerRun, average_query_seconds, measure_call, run_miner
from repro.eval.metrics import MinerScores, evaluate_miner, ndcg
from repro.eval.reporting import format_table
from repro.strings.alphabet import Alphabet
from repro.suffix.suffix_array import SuffixArray


def _index(text: str) -> SuffixArray:
    return SuffixArray(Alphabet.from_text(text).encode(text))


class TestNdcg:
    def test_perfect_ranking_is_one(self):
        assert ndcg([5, 4, 3], [3, 4, 5]) == pytest.approx(1.0)

    def test_empty_ideal(self):
        assert ndcg([], []) == 1.0

    def test_worse_ranking_below_one(self):
        assert ndcg([3, 4, 5], [3, 4, 5]) < 1.0

    def test_missing_entries_penalised(self):
        assert ndcg([5], [5, 4, 3]) < 1.0

    def test_range(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            ideal = rng.integers(1, 100, size=10)
            gains = rng.permutation(ideal)[:7]
            value = ndcg(gains, ideal)
            assert 0.0 <= value <= 1.0 + 1e-12


class TestEvaluateMiner:
    def test_exact_scores_perfectly(self):
        text = "ABRACADABRA" * 3
        index = _index(text)
        k = 10
        scores = evaluate_miner(exact_top_k(text, k), index, k)
        assert scores.accuracy_percent == pytest.approx(100.0)
        assert scores.relative_error == pytest.approx(0.0)
        assert scores.ndcg == pytest.approx(1.0)

    def test_s1_approximate_scores_perfectly(self):
        text = "ABRACADABRA" * 3
        index = _index(text)
        k = 8
        results = ApproximateTopK(text, k=k, s=1).mine()
        scores = evaluate_miner(results, index, k)
        assert scores.accuracy_percent == pytest.approx(100.0)

    def test_garbage_scores_zero_accuracy(self):
        text = "ABABABAB" + "Z"
        index = _index(text)
        # Report the rare 'Z' with a wrong frequency.
        junk = [MinedSubstring(position=8, length=1, frequency=99)]
        scores = evaluate_miner(junk, index, 4)
        assert scores.accuracy_percent == 0.0
        assert scores.relative_error > 0.0
        assert scores.ndcg < 1.0

    def test_partial_credit(self):
        text = "ABABAB"
        index = _index(text)
        truth = exact_top_k(text, 4)
        # Keep two true entries, corrupt two.
        mixed = truth[:2] + [
            MinedSubstring(position=0, length=5, frequency=1),
            MinedSubstring(position=1, length=5, frequency=1),
        ]
        scores = evaluate_miner(mixed, index, 4)
        assert scores.accuracy_percent == pytest.approx(50.0)

    def test_tie_robustness(self):
        """Any tie-consistent top-K selection scores 100%."""
        text = "ABCABC"  # many frequency ties at 2
        index = _index(text)
        k = 3
        oracle = TopKOracle(index)
        truth = oracle.top_k(6)
        # Choose a *different* subset of the tied substrings.
        alternative = [truth[0], truth[2], truth[1]]
        scores = evaluate_miner(alternative, index, k, oracle=oracle)
        assert scores.accuracy_percent == pytest.approx(100.0)

    def test_duplicates_deduped(self):
        text = "ABABAB"
        index = _index(text)
        truth = exact_top_k(text, 2)
        duplicated = [truth[0], truth[0], truth[0]]
        scores = evaluate_miner(duplicated, index, 3)
        assert scores.accuracy_percent <= 100.0 / 3 + 1e-6

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            evaluate_miner([], _index("AB"), 0)

    def test_relative_error_nonnegative(self):
        text = "ABRACADABRA"
        index = _index(text)
        scores = evaluate_miner(exact_top_k(text, 5), index, 5)
        assert scores.relative_error >= 0.0


class TestHarness:
    def test_measure_call(self):
        value, seconds, peak = measure_call(lambda: sum(range(1000)))
        assert value == 499500
        assert seconds >= 0.0
        assert peak >= 0

    def test_measure_call_no_memory(self):
        value, seconds, peak = measure_call(lambda: 42, trace_memory=False)
        assert value == 42
        assert peak == 0

    def test_measure_call_propagates_errors(self):
        def boom():
            raise ValueError("x")

        with pytest.raises(ValueError):
            measure_call(boom)

    def test_run_miner(self):
        run = run_miner("demo", lambda: [1, 2, 3])
        assert isinstance(run, MinerRun)
        assert run.name == "demo"
        assert run.results == [1, 2, 3]

    def test_average_query_seconds(self):
        calls = []
        avg = average_query_seconds(calls.append, [1, 2, 3])
        assert len(calls) == 3
        assert avg >= 0.0
        assert average_query_seconds(calls.append, []) == 0.0


class TestReporting:
    def test_format_table_basic(self):
        table = format_table(["a", "bb"], [[1, 2.5], ["x", 0.0001234]])
        lines = table.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert len(lines) == 4

    def test_title(self):
        table = format_table(["h"], [[1]], title="Table 9")
        assert table.splitlines()[0] == "Table 9"

    def test_alignment(self):
        table = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = table.splitlines()
        assert len(lines[1]) == len(lines[2])

    def test_float_formatting(self):
        assert "e-05" in format_table(["x"], [[1.2345e-5]])
