"""Sequencing-read collection with expected-frequency queries.

The paper's bioinformatics motivation in full: a *collection* of DNA
reads, each base carrying a correctness probability (phred-style), and
researchers "evaluating the quality of a DNA pattern by computing its
expected frequency in a collection of DNA strings with confidence
scores".  Expected frequency is the "sum of products" global utility:
sum over occurrences of the product of per-base probabilities —
supported here via the ``local="product"`` utility.

The read simulator is registered as the ``read_collection`` scenario
(the one collection-kind world in the registry, driving the
collection/sharded/live backends); this example tells the domain
story and re-verifies the pinned baseline.

Run with:  python examples/read_collection.py
"""

import numpy as np

from repro import CollectionUsiIndex
from repro.datasets import compute_baseline, get_scenario, verify_baseline

SCENARIO = "read_collection"


def main() -> int:
    scenario = get_scenario(SCENARIO)
    collection = scenario.make()  # pinned size, seed 0
    print(f"{collection.document_count} reads, "
          f"{collection.combined.length} bases total (with separators)")

    # Expected frequency: sum over occurrences of Π per-base confidence.
    index = CollectionUsiIndex(
        collection, k=scenario.default_k(), local="product"
    )

    # Probe 12-mers drawn from the reads themselves.
    rng = np.random.default_rng(1)
    longest = max(collection.documents, key=lambda doc: doc.length)
    probes = []
    for _ in range(6):
        start = int(rng.integers(0, longest.length - 12))
        probes.append(longest.fragment_text(start, 12))

    print("\n12-mer quality assessment (expected vs raw frequency):")
    print(f"{'pattern':14} {'occ':>4} {'reads':>6} {'E[freq]':>9}")
    for pattern in probes:
        occurrences = index.count(pattern)
        documents = index.document_frequency(pattern)
        expected = index.query(pattern)
        print(f"{pattern:14} {occurrences:4d} {documents:6d} {expected:9.3f}")

    # A pattern's expected frequency is always at most its raw count
    # (each occurrence contributes a probability <= 1).
    for pattern in probes:
        assert index.query(pattern) <= index.count(pattern) + 1e-9

    baseline = compute_baseline(SCENARIO)
    problems = verify_baseline(SCENARIO, baseline)
    print(f"\npinned answers_sum over the canonical workload: "
          f"{baseline['answers_sum']:.3f}")
    if problems:
        print("baseline: DRIFT")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("baseline: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
