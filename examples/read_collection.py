"""Sequencing-read collection with expected-frequency queries.

The paper's bioinformatics motivation in full: a *collection* of DNA
reads, each base carrying a correctness probability (phred-style), and
researchers "evaluating the quality of a DNA pattern by computing its
expected frequency in a collection of DNA strings with confidence
scores".  Expected frequency is the "sum of products" global utility:
sum over occurrences of the product of per-base probabilities —
supported here via the ``local="product"`` utility.

Run with:  python examples/read_collection.py
"""

import numpy as np

from repro import Alphabet, CollectionUsiIndex, WeightedString, WeightedStringCollection


def simulate_reads(count: int = 60, length: int = 150, seed: int = 0):
    """Reads sampled from one reference with per-base phred confidences."""
    rng = np.random.default_rng(seed)
    reference = rng.integers(0, 4, size=2_000, dtype=np.int32)
    alphabet = Alphabet.dna()
    reads = []
    for _ in range(count):
        start = int(rng.integers(0, len(reference) - length))
        bases = reference[start : start + length].copy()
        confidences = np.clip(rng.beta(9.0, 1.2, size=length), 0.05, 0.999)
        # Low-confidence bases are exactly the ones that miscall.
        errors = rng.random(length) > confidences
        bases[errors] = rng.integers(0, 4, size=int(errors.sum()))
        reads.append(WeightedString(bases, confidences, alphabet))
    return reference, reads


def main() -> None:
    reference, reads = simulate_reads()
    collection = WeightedStringCollection(reads)
    print(f"{collection.document_count} reads, "
          f"{collection.combined.length} bases total (with separators)")

    # Expected frequency: sum over occurrences of Π per-base confidence.
    index = CollectionUsiIndex(
        collection, k=collection.combined.length // 50, local="product"
    )

    alphabet = Alphabet.dna()
    probes = []
    rng = np.random.default_rng(1)
    for _ in range(6):
        start = int(rng.integers(0, len(reference) - 12))
        probes.append("".join("ACGT"[c] for c in reference[start : start + 12]))

    print("\n12-mer quality assessment (expected vs raw frequency):")
    print(f"{'pattern':14} {'occ':>4} {'reads':>6} {'E[freq]':>9}")
    for pattern in probes:
        occurrences = index.count(pattern)
        documents = index.document_frequency(pattern)
        expected = index.query(pattern)
        print(f"{pattern:14} {occurrences:4d} {documents:6d} {expected:9.3f}")

    # A pattern's expected frequency is always at most its raw count
    # (each occurrence contributes a probability <= 1).
    for pattern in probes:
        assert index.query(pattern) <= index.count(pattern) + 1e-9

    # Patterns overlapping error-prone read regions score visibly lower
    # per occurrence; a quick aggregate check:
    ratios = [
        index.query(p) / max(index.count(p), 1) for p in probes if index.count(p)
    ]
    if ratios:
        print(f"\nmean per-occurrence confidence of probes: {np.mean(ratios):.3f}")


if __name__ == "__main__":
    main()
