"""Bioinformatics scenario: k-mer quality profiling with confidence scores.

The paper's motivating bioinformatics use case (and its Example 2):
DNA from sequencing machines comes with a per-base confidence score;
researchers evaluate the quality of short DNA patterns (k-mers) by
their aggregate confidence over all occurrences.

This world lives in the scenario registry as ``dna_quality`` — the
same corpus, workloads, and pinned expected-metric baseline the
regression matrix (``usi scenarios run``) drives through every
backend.  The example is a thin consumer: it tells the domain story,
then re-verifies the pinned baseline.

Run with:  python examples/dna_quality.py
"""

import numpy as np

import repro
from repro.core.topk_oracle import TopKOracle
from repro.datasets import compute_baseline, get_scenario, verify_baseline
from repro.suffix.suffix_array import SuffixArray

SCENARIO = "dna_quality"


def main() -> int:
    scenario = get_scenario(SCENARIO)
    ws = scenario.make()  # pinned size, seed 0
    k = scenario.default_k()
    print(f"dataset: {ws.length} bases, alphabet {ws.alphabet.letters}, K={k}")

    index = repro.build(ws, backend="usi", k=k)

    # Example 2 queries patterns drawn from the frequent pool — hot
    # k-mers where recomputing the aggregate every time is what hurts
    # the plain suffix-array index.
    oracle = TopKOracle(SuffixArray(ws.codes))
    print("\nper-pattern quality (sum of confidence over all occurrences):")
    shown = 0
    for mined in oracle.top_k(k):
        if mined.length < 4:
            continue
        pattern = ws.codes[mined.position : mined.position + mined.length]
        pattern = pattern.astype(np.int64)
        text = ws.fragment_text(mined.position, mined.length)
        print(f"  {text:10}  occ={index.count(pattern):5}  "
              f"U={index.query(pattern):10.2f}")
        shown += 1
        if shown == 6:
            break

    baseline = compute_baseline(SCENARIO)
    problems = verify_baseline(SCENARIO, baseline)
    print(f"\npinned answers_sum over the canonical workload: "
          f"{baseline['answers_sum']:.3f}")
    if problems:
        print("baseline: DRIFT")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("baseline: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
