"""Bioinformatics scenario: k-mer quality profiling with confidence scores.

The paper's motivating bioinformatics use case (and its Example 2):
DNA from sequencing machines comes with a per-base confidence score;
researchers evaluate the quality of short DNA patterns (k-mers) by
their aggregate confidence over all occurrences.  Frequent k-mers have
millions of occurrences, so the USI hash table pays off massively
against recomputing from the suffix array each time.

Run with:  python examples/dna_quality.py
"""

import time

import numpy as np

from repro import Bsl1NoCache, UsiIndex
from repro.datasets import make_ecoli


def main() -> None:
    # An E. coli-like read collection with phred-style confidences.
    n = 30_000
    ws = make_ecoli(n, seed=7)
    print(f"dataset: {n} bases, alphabet {ws.alphabet.letters}")

    # Index with K = n/50 so the whole frequent query pool is cached
    # (the paper's Example 2 uses K = n/100 at n = 2.9e9).
    k = n // 50
    index = UsiIndex.build(ws, k=k)
    report = index.report
    print(
        f"UET built: K={report.k}, tau_K={report.tau_k}, "
        f"L_K={report.distinct_lengths}, |H|={report.hash_entries}"
    )

    # Example 2 queries patterns "randomly selected from the top-(n/50)
    # frequent substrings" — at genome scale those are 8-mers with 1e5+
    # occurrences; at this scale the frequent pool holds shorter mers,
    # but the experiment is the same: hot patterns, where recomputing
    # the aggregate every time is what hurts the plain index.
    from repro.core.topk_oracle import TopKOracle

    oracle = TopKOracle(index.suffix_array)
    pool = [
        ws.codes[m.position : m.position + m.length].astype(np.int64)
        for m in oracle.top_k(n // 50)
        if m.length >= 3
    ]
    rng = np.random.default_rng(0)
    picks = rng.integers(0, len(pool), size=2_000)
    patterns = [pool[int(i)] for i in picks]

    t0 = time.perf_counter()
    usi_values = [index.query(p) for p in patterns]
    usi_seconds = time.perf_counter() - t0

    baseline = Bsl1NoCache(ws)
    t0 = time.perf_counter()
    bsl_values = [baseline.query(p) for p in patterns]
    bsl_seconds = time.perf_counter() - t0

    assert np.allclose(usi_values, bsl_values)
    print("2000 frequent-mer quality queries:")
    print(f"  USI index : {usi_seconds * 1e6 / len(patterns):8.1f} us/query")
    print(f"  SA + PSW  : {bsl_seconds * 1e6 / len(patterns):8.1f} us/query")
    print(f"  speedup   : {bsl_seconds / max(usi_seconds, 1e-12):8.1f}x")

    # Rank some specific mers by quality-per-occurrence.
    probes = sorted({ws.alphabet.decode(p) for p in patterns[:12]})
    print("\nper-pattern quality (sum of confidence over all occurrences):")
    for pattern in probes[:8]:
        count = index.count(pattern)
        print(f"  {pattern:10}  occ={count:5}  U={index.query(pattern):10.2f}")


if __name__ == "__main__":
    main()
