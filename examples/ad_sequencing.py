"""Advertising scenario: the paper's Section II case study.

An advertising company's history is a string of ad categories, each
position carrying a click-through rate (CTR).  Marketers query their
candidate ad sequences ("patterns") for effectiveness = sum of CTRs
over every occurrence; the company separately mines the most *useful*
(highest-utility) sequences, which — as Table I shows — differ from
the most *frequent* ones.

Run with:  python examples/ad_sequencing.py
"""

import time

from repro import UsiIndex, top_utility_substrings
from repro.core.exact_topk import exact_top_k
from repro.datasets import make_adv
from repro.eval.reporting import format_table


def main() -> None:
    ws = make_adv(20_000, seed=3)
    print(f"ad history: {ws.length} impressions over {ws.alphabet.size} categories")

    index = UsiIndex.build(ws, k=ws.length // 36)  # the ADV K/n ratio

    # --- Marketer queries: are these ad sequences effective? ----------
    candidates = ["abc", "aab", "nml", "dcba", "aaa"]
    print("\nmarketer pattern effectiveness (sum-of-CTRs over occurrences):")
    for pattern in candidates:
        print(f"  {pattern!r:8} U={index.query(pattern):10.3f}  occ={index.count(pattern)}")

    # --- Bulk querying (the 3.4s-for-187k-patterns headline) ----------
    patterns = []
    text = ws.text()
    for length in range(3, 21):
        for start in range(0, ws.length - length, 37):
            patterns.append(text[start : start + length])
    t0 = time.perf_counter()
    for pattern in patterns:
        index.query(pattern)
    seconds = time.perf_counter() - t0
    print(f"\nqueried {len(patterns)} patterns in {seconds:.2f}s "
          f"({seconds * 1e6 / len(patterns):.1f} us/query)")

    # --- Table I: top-by-utility vs top-by-frequency -------------------
    by_utility = top_utility_substrings(ws, top=4, min_length=3, max_length=30)
    rows_a = [
        (ws.fragment_text(u.position, u.length), rank + 1, round(u.utility, 1))
        for rank, u in enumerate(by_utility)
    ]
    print("\n" + format_table(
        ["substring", "rank", "utility U"], rows_a,
        title="Table Ia analogue: top-4 substrings by global utility (len >= 3)",
    ))

    frequent = [m for m in exact_top_k(ws, 4000) if m.length >= 3][:4]
    rows_b = [
        (
            ws.fragment_text(m.position, m.length),
            m.frequency,
            round(index.query(ws.fragment_text(m.position, m.length)), 1),
        )
        for m in frequent
    ]
    print("\n" + format_table(
        ["substring", "frequency", "utility U"], rows_b,
        title="Table Ib analogue: top-4 *frequent* substrings (len >= 3)",
    ))
    print("\nNote how the most frequent sequences are not the most useful ones.")


if __name__ == "__main__":
    main()
