"""Advertising scenario: the paper's Section II case study.

An advertising company's history is a string of ad categories, each
position carrying a click-through rate (CTR).  Marketers query their
candidate ad sequences ("patterns") for effectiveness = sum of CTRs
over every occurrence; the company separately mines the most *useful*
(highest-utility) sequences, which — as Table I shows — differ from
the most *frequent* ones.

The world is registered as the ``ad_sequencing`` scenario; this
example walks the Table I story over the registered corpus and
re-verifies the pinned expected-metric baseline.

Run with:  python examples/ad_sequencing.py
"""

import repro
from repro import top_utility_substrings
from repro.core.exact_topk import exact_top_k
from repro.datasets import compute_baseline, get_scenario, verify_baseline
from repro.eval.reporting import format_table

SCENARIO = "ad_sequencing"


def main() -> int:
    scenario = get_scenario(SCENARIO)
    ws = scenario.make()  # pinned size, seed 0 (the ADV K/n ratio)
    print(f"ad history: {ws.length} impressions over "
          f"{ws.alphabet.size} categories")

    index = repro.build(ws, backend="usi", k=scenario.default_k())

    # --- Marketer queries: are these ad sequences effective? ----------
    candidates = ["abc", "aab", "nml", "dcba", "aaa"]
    print("\nmarketer pattern effectiveness (sum-of-CTRs over occurrences):")
    for pattern in candidates:
        print(f"  {pattern!r:8} U={index.query(pattern):10.3f}  "
              f"occ={index.count(pattern)}")

    # --- Table I: top-by-utility vs top-by-frequency -------------------
    by_utility = top_utility_substrings(ws, top=4, min_length=3, max_length=30)
    rows_a = [
        (ws.fragment_text(u.position, u.length), rank + 1, round(u.utility, 1))
        for rank, u in enumerate(by_utility)
    ]
    print("\n" + format_table(
        ["substring", "rank", "utility U"], rows_a,
        title="Table Ia analogue: top-4 substrings by global utility (len >= 3)",
    ))

    frequent = [m for m in exact_top_k(ws, 4000) if m.length >= 3][:4]
    rows_b = [
        (
            ws.fragment_text(m.position, m.length),
            m.frequency,
            round(index.query(ws.fragment_text(m.position, m.length)), 1),
        )
        for m in frequent
    ]
    print("\n" + format_table(
        ["substring", "frequency", "utility U"], rows_b,
        title="Table Ib analogue: top-4 *frequent* substrings (len >= 3)",
    ))
    print("\nNote how the most frequent sequences are not the most useful ones.")

    baseline = compute_baseline(SCENARIO)
    problems = verify_baseline(SCENARIO, baseline)
    print(f"\npinned answers_sum over the canonical workload: "
          f"{baseline['answers_sum']:.3f}")
    if problems:
        print("baseline: DRIFT")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("baseline: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
