"""Web-analytics scenario: browsing-time utilities over a page log.

A web server log is a string of page identifiers where each visit is
weighted by browsing time.  USI answers "how much total attention did
this navigation path receive?" — useful for navigation recommendations
and page-design decisions (the paper's web-analytics motivation).

Run with:  python examples/web_analytics.py
"""

import numpy as np

from repro import TopKOracle, UsiIndex, WeightedString, top_utility_substrings
from repro.suffix.suffix_array import SuffixArray


def synthesize_log(n: int = 15_000, pages: int = 26, seed: int = 0) -> WeightedString:
    """A page-visit log with session-like structure.

    Users follow a handful of popular navigation funnels (short page
    sequences) interleaved with exploratory clicks; browsing time is
    log-normal per visit, with 'content' pages holding attention longer
    than 'navigation' pages.
    """
    rng = np.random.default_rng(seed)
    funnels = [rng.integers(0, pages, size=int(rng.integers(3, 7)))
               for _ in range(8)]
    chunks, total = [], 0
    while total < n:
        if rng.random() < 0.7:
            chunk = funnels[min(int(rng.zipf(1.4)) - 1, 7)]
        else:
            chunk = rng.integers(0, pages, size=1)
        chunks.append(chunk)
        total += len(chunk)
    codes = np.concatenate(chunks)[:n].astype(np.int32)
    base_time = rng.uniform(2.0, 40.0, size=pages)  # content vs nav pages
    times = base_time[codes] * rng.lognormal(0.0, 0.4, size=n)
    letters = [chr(ord("a") + i) for i in range(pages)]
    from repro import Alphabet

    return WeightedString(codes, times, Alphabet(range(pages)))


def main() -> None:
    ws = synthesize_log()
    print(f"web log: {ws.length} page visits, {ws.alphabet.size} pages")

    index = UsiIndex.build(ws, k=ws.length // 100)

    # Total attention received by specific navigation paths.
    oracle = TopKOracle(SuffixArray(ws.codes))
    hot_paths = oracle.top_k(200)
    print("\ntotal browsing time for some frequent navigation paths:")
    shown = 0
    for path in hot_paths:
        if path.length < 3:
            continue
        pattern = ws.codes[path.position : path.position + path.length].astype(np.int64)
        print(f"  path {ws.fragment_text(path.position, path.length)!r:12} "
              f"visits={path.frequency:5d}  total_time={index.query(pattern):12.1f}s")
        shown += 1
        if shown == 5:
            break

    # Which 3-page paths hold the most attention *overall*?
    top = top_utility_substrings(ws, top=5, min_length=3, max_length=3)
    print("\nmost valuable 3-page paths by total browsing time:")
    for entry in top:
        print(f"  {ws.fragment_text(entry.position, 3)!r}: "
              f"{entry.utility:12.1f}s over {entry.frequency} traversals")

    # Tuning: how big would a tau=20 index be?
    point = oracle.tune_by_tau(20)
    print(f"\ntau=20 would precompute K_tau={point.k} paths "
          f"(L_tau={point.distinct_lengths} distinct lengths)")


if __name__ == "__main__":
    main()
