"""Web-analytics scenario: browsing-time utilities over a page log.

A web server log is a string of page identifiers where each visit is
weighted by browsing time.  USI answers "how much total attention did
this navigation path receive?" — useful for navigation recommendations
and page-design decisions (the paper's web-analytics motivation).

The log generator lives in the scenario registry as ``web_analytics``
(see ``repro.datasets.scenarios.make_web_log``); this example tells
the domain story over the registered world and re-verifies its pinned
expected-metric baseline.

Run with:  python examples/web_analytics.py
"""

import numpy as np

import repro
from repro import TopKOracle, top_utility_substrings
from repro.datasets import compute_baseline, get_scenario, verify_baseline
from repro.suffix.suffix_array import SuffixArray

SCENARIO = "web_analytics"


def main() -> int:
    scenario = get_scenario(SCENARIO)
    ws = scenario.make()  # pinned size, seed 0
    print(f"web log: {ws.length} page visits, {ws.alphabet.size} pages")

    index = repro.build(ws, backend="usi", k=scenario.default_k())

    # Total attention received by specific navigation paths.
    oracle = TopKOracle(SuffixArray(ws.codes))
    print("\ntotal browsing time for some frequent navigation paths:")
    shown = 0
    for path in oracle.top_k(200):
        if path.length < 3:
            continue
        pattern = ws.codes[path.position : path.position + path.length]
        pattern = pattern.astype(np.int64)
        print(f"  path {ws.fragment_text(path.position, path.length)!r:12} "
              f"visits={path.frequency:5d}  "
              f"total_time={index.query(pattern):12.1f}s")
        shown += 1
        if shown == 5:
            break

    # Which 3-page paths hold the most attention *overall*?
    top = top_utility_substrings(ws, top=5, min_length=3, max_length=3)
    print("\nmost valuable 3-page paths by total browsing time:")
    for entry in top:
        print(f"  {ws.fragment_text(entry.position, 3)!r}: "
              f"{entry.utility:12.1f}s over {entry.frequency} traversals")

    baseline = compute_baseline(SCENARIO)
    problems = verify_baseline(SCENARIO, baseline)
    print(f"\npinned answers_sum over the canonical workload: "
          f"{baseline['answers_sum']:.3f}")
    if problems:
        print("baseline: DRIFT")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("baseline: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
