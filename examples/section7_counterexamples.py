"""Section VII live: why frequent-item miners fail on substrings.

The paper proves (details in its supplement) that adapting
Misra-Gries/Space-Saving-style top-K *item* mining to *substrings*
breaks: on the string (AB)^(n/2) both SubstringHK and Top-K-Trie
mis-estimate much of the true top-K.  This example runs the actual
algorithms on the counterexample and on a long-repeat IOT-like input,
and contrasts them with Exact-/Approximate-Top-K.

Run with:  python examples/section7_counterexamples.py
"""

from repro import ApproximateTopK, SubstringHK, TopKTrie, exact_top_k
from repro.eval.metrics import evaluate_miner
from repro.eval.reporting import format_table
from repro.strings.alphabet import Alphabet
from repro.suffix.suffix_array import SuffixArray


def score_all(text: str, k: int, s: int = 4) -> list[tuple]:
    index = SuffixArray(Alphabet.from_text(text).encode(text))
    rows = []
    for name, results in [
        ("Exact-Top-K", exact_top_k(text, k)),
        ("Approximate-Top-K", ApproximateTopK(text, k=k, s=s).mine()),
        ("Top-K-Trie", TopKTrie(text, k=k).mine()),
        ("SubstringHK", SubstringHK(text, k=k, seed=0).mine()),
    ]:
        scores = evaluate_miner(results, index, k)
        longest = max((m.length for m in results), default=0)
        rows.append(
            (name, f"{scores.accuracy_percent:.1f}", f"{scores.ndcg:.4f}", longest)
        )
    return rows


def main() -> None:
    # --- The paper's counterexample: (AB)^(n/2) ------------------------
    text = "AB" * 300
    k = 16
    print(format_table(
        ["method", "accuracy %", "NDCG", "longest found"],
        score_all(text, k),
        title=f"(AB)^300, K={k}: the Misra-Gries-style adaptations mis-count",
    ))
    print(
        "\nWhy: every substring of (AB)^n is periodic, so all K counters"
        "\nconstantly collide; Top-K-Trie's inherited (Space-Saving) counts"
        "\ninflate, and SubstringHK's decaying sketch churns. Approximate-"
        "\nTop-K instead *indexes* each sample, so its per-round counts are"
        "\nexact and only ever under-count (one-sided error)."
    )

    # --- Long frequent substrings (the IOT failure mode) ---------------
    # Near-periodic sensor traces put *long* substrings into the top-K:
    # with beacon rotations of period ~5 there are only ~5 distinct
    # substrings per length, so the top-K ladder climbs to length ~K/5.
    from repro.datasets import make_iot

    ws = make_iot(6_000, seed=2)
    k = ws.length // 40
    index = SuffixArray(ws.codes)
    rows = []
    for name, results in [
        ("Exact-Top-K", exact_top_k(ws, k)),
        ("Approximate-Top-K", ApproximateTopK(ws, k=k, s=8).mine()),
        ("Top-K-Trie", TopKTrie(ws, k=k).mine()),
        ("SubstringHK", SubstringHK(ws, k=k, seed=0).mine()),
    ]:
        scores = evaluate_miner(results, index, k)
        longest = max((m.length for m in results), default=0)
        rows.append(
            (name, f"{scores.accuracy_percent:.1f}", f"{scores.ndcg:.4f}", longest)
        )
    print()
    print(format_table(
        ["method", "accuracy %", "NDCG", "longest found"],
        rows,
        title=f"IOT-like trace (n={ws.length}), K={k}: reaching long substrings",
    ))
    exact_longest = max(m.length for m in exact_top_k(ws, k))
    print(
        f"\nThe exact top-{k} contains substrings of length {exact_longest}; "
        "the streaming"
        "\nadaptations cannot count them: SubstringHK must win ~l^2/2 coin"
        "\nflips to extend to length l, and Top-K-Trie needs an l-node chain"
        "\nto survive every eviction."
    )


if __name__ == "__main__":
    main()
