"""Quickstart: build a USI index and query global utilities.

Reproduces Example 1 from the paper's introduction through the
``repro.build()`` facade, shows the difference between hash-table
(frequent) and suffix-array (rare) query paths, the backend registry
(every engine family answers identically), save/``repro.open()``
round-tripping, and the Section-V tuning oracle.

Run with:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

import repro
from repro import TopKOracle, UsiIndex, WeightedString, naive_global_utility
from repro.suffix.suffix_array import SuffixArray


def main() -> None:
    # --- Example 1 from the paper -------------------------------------
    # S with one utility per position; U = "sum of sums".
    ws = WeightedString(
        "ATACCCCGATAATACCCCAG",
        [0.9, 1, 3, 2, 0.7, 1, 1, 0.6, 0.5, 0.5,
         0.5, 0.8, 1, 1, 1, 0.9, 1, 1, 0.8, 1],
    )
    index = repro.build(ws, k=10)           # backend="usi" is the default

    value = index.query("TACCCC")
    print(f"U('TACCCC') = {value:.1f}   (paper's Example 1 says 14.6)")
    assert abs(value - 14.6) < 1e-9

    # Any pattern works, including absent ones (utility 0).
    for pattern in ["A", "TA", "CCCC", "GGGG"]:
        cached = "hash table" if index.inner.is_cached(pattern) else "suffix array"
        print(f"U({pattern!r:9}) = {index.query(pattern):6.2f}   answered via {cached}")

    # Answers always match the brute-force definition.
    for pattern in ["A", "TA", "CCCC"]:
        assert abs(index.query(pattern) - naive_global_utility(ws, pattern)) < 1e-9

    # --- One protocol, many engines (repro.api) -----------------------
    # Every registered backend answers exact queries identically; they
    # differ in construction cost, space, and which patterns are fast.
    print(f"registered backends: {', '.join(repro.available_backends())}")
    for backend in ["usi", "uat", "fm", "oracle", "bsl2"]:
        engine = repro.build(ws, k=10, backend=backend)
        assert abs(engine.query("TACCCC") - 14.6) < 1e-9
    print("usi, uat, fm, oracle, and bsl2 all answer U('TACCCC') = 14.6")

    # Saved indexes reopen through repro.open() with the right adapter.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "example1.npz"
        repro.save_index(index, path)
        reopened = repro.open(path)
        info = reopened.stats()
        print(f"reopened backend={info.backend} "
              f"batch={reopened.query_batch(['TACCCC', 'CCCC'])}")

    # --- Tuning before building (Section V) ---------------------------
    # The oracle predicts query time (tau_K) and construction time (L_K)
    # for any K, and index size (K_tau) for any tau, in O(log n).
    oracle = TopKOracle(SuffixArray(ws.codes))
    for k in [1, 5, 20]:
        point = oracle.tune_by_k(k)
        print(f"K={k:3}: tau_K={point.tau}  L_K={point.distinct_lengths}")
    point = oracle.tune_by_tau(2)
    print(f"tau=2: K_tau={point.k} substrings would be precomputed")

    # --- UAT: the space-efficient construction (Section VI) -----------
    uat = UsiIndex.build(ws, k=10, miner="approximate", s=3)
    assert abs(uat.query("TACCCC") - 14.6) < 1e-9
    print("UAT (Approximate-Top-K construction) agrees with UET.")


if __name__ == "__main__":
    main()
