"""Scale check: the library at a few hundred thousand letters.

Not a benchmark — a smoke run showing the pure-Python + numpy stack
handles texts well beyond the test scale: builds a USI index over a
200k-letter DNA-like text, mines its top-K, and pushes a workload
through it, printing wall-clock numbers for each stage.

Run with:  python examples/scale_check.py [n]
"""

import sys
import time

import numpy as np

from repro import TopKOracle, UsiIndex
from repro.datasets import make_hum
from repro.datasets.workloads import build_w1
from repro.suffix.suffix_array import SuffixArray


def timed(label: str, fn):
    start = time.perf_counter()
    result = fn()
    print(f"  {label:36} {time.perf_counter() - start:7.2f}s")
    return result


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    print(f"scale check at n = {n}")

    ws = timed("generate weighted DNA text", lambda: make_hum(n, seed=1))
    index = timed("suffix array + LCP", lambda: SuffixArray(ws.codes))
    oracle = timed("Section-V oracle", lambda: TopKOracle(index))

    k = n // 100
    point = oracle.tune_by_k(k)
    print(f"  K={k}: tau_K={point.tau}, L_K={point.distinct_lengths}")

    usi = timed("USI index (UET)", lambda: UsiIndex.build(ws, k=k))
    queries = timed(
        "W1 workload (5000 queries)",
        lambda: build_w1(ws, oracle, 5_000, length_range=(1, 500), seed=0),
    )

    start = time.perf_counter()
    total = sum(usi.query_batch(queries))
    elapsed = time.perf_counter() - start
    print(f"  {'answer all queries (batch)':36} {elapsed:7.2f}s "
          f"({elapsed / len(queries) * 1e6:.1f} us/query)")
    assert np.isfinite(total)
    print(f"  index size: {usi.nbytes() / 1e6:.1f} MB, "
          f"|H| = {usi.hash_table_size}, hash hit rate = "
          f"{usi.hash_hits / max(usi.hash_hits + usi.hash_misses, 1):.0%}")


if __name__ == "__main__":
    main()
