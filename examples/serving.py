"""Serving walkthrough: shard -> engine -> registry -> HTTP server.

Builds a small weighted-document collection, indexes it through the
``repro.build()`` facade as document-aligned shards (answers provably
equal the monolithic index), wraps it in a cached query engine,
registers it next to a second backend, and serves both over JSON/HTTP
— then queries the server like a client would.  ``GET /indexes``
reports each index's backend and capability flags, because the whole
stack targets the :class:`repro.api.UtilityIndex` protocol rather than
any concrete engine.

Run with:  python examples/serving.py
"""

import json
import urllib.request

import repro
from repro import (
    IndexRegistry,
    QueryEngine,
    UsiServer,
    WeightedString,
    WeightedStringCollection,
)
from repro.strings.alphabet import Alphabet


def main() -> None:
    # --- A collection of weighted documents ---------------------------
    # Session logs over a tiny event alphabet; utilities score how
    # valuable each event was (e.g. revenue attributed to it).
    alphabet = Alphabet("ACGT")
    texts = [
        "ATACCCCGATAATACCCCAG",
        "TACCCCTACCCCGGG",
        "ATATATACCCC",
        "CCCCGGGGAAAA",
    ]
    documents = [
        WeightedString(text, [1.0 + 0.25 * (i % 4) for i in range(len(text))],
                       alphabet)
        for text in texts
    ]
    collection = WeightedStringCollection(documents)

    # --- Sharded build (parallel across processes) ---------------------
    # repro.build dispatches by backend name; both indexes speak the
    # same UtilityIndex protocol.
    sharded = repro.build(collection, k=20, backend="sharded", shards=2)
    mono = repro.build(collection, k=20, backend="collection")
    for pattern in ["TACCCC", "CCCC", "GGG", "TTTT"]:
        assert sharded.query(pattern) == mono.query(pattern)
    print(f"sharded index: {sharded.stats().detail['shards']} shards, "
          f"answers equal the monolithic index")

    # --- The engine: batched queries + LRU cache -----------------------
    engine = QueryEngine(sharded, cache_size=256)
    workload = ["TACCCC", "CCCC", "TACCCC", "GGG", "TACCCC", "CCCC"]
    values = engine.query_batch(workload)   # cold: misses fill the cache
    engine.query_batch(workload)            # warm: every lookup hits
    stats = engine.stats()
    print(f"two batches of {len(workload)}: hit rate {stats['hit_rate']:.2f}, "
          f"U('TACCCC') = {values[0]:.2f}")

    # --- Registry + HTTP server ----------------------------------------
    registry = IndexRegistry(cache_size=256)
    registry.register("sessions", sharded)
    registry.register("sessions-mono", mono)
    with UsiServer(registry, port=0) as server:
        print(f"serving on {server.url}")
        with urllib.request.urlopen(server.url + "/indexes", timeout=10) as response:
            listing = json.loads(response.read())["indexes"]
        for row in listing:
            flags = ",".join(f for f, on in row["capabilities"].items() if on)
            print(f"  index {row['name']!r}: backend={row['backend']} [{flags}]")
        request = urllib.request.Request(
            server.url + "/query",
            data=json.dumps(
                {"index": "sessions",
                 "patterns": ["TACCCC", "CCCC", "TTTT"],
                 "count": True}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            body = json.loads(response.read())
        for row in body["results"]:
            print(f"  U({row['pattern']!r:9}) = {row['utility']:8.2f}"
                  f"   occurrences = {row['count']}")
        with urllib.request.urlopen(server.url + "/stats", timeout=10) as response:
            served = json.loads(response.read())
        print(f"server answered {served['server']['total_queries']} queries, "
              f"p99 = {served['server']['p99_ms']:.2f} ms")
    print("server stopped.")


if __name__ == "__main__":
    main()
