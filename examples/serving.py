"""Serving walkthrough: shard -> engine -> registry -> HTTP server.

Builds a small weighted-document collection, indexes it as
document-aligned shards (answers provably equal the monolithic
index), wraps it in a cached query engine, registers it next to a
second index, and serves both over JSON/HTTP — then queries the
server like a client would.

Run with:  python examples/serving.py
"""

import json
import urllib.request

from repro import (
    IndexRegistry,
    QueryEngine,
    ShardedUsiIndex,
    UsiIndex,
    UsiServer,
    WeightedString,
    WeightedStringCollection,
)
from repro.strings.alphabet import Alphabet


def main() -> None:
    # --- A collection of weighted documents ---------------------------
    # Session logs over a tiny event alphabet; utilities score how
    # valuable each event was (e.g. revenue attributed to it).
    alphabet = Alphabet("ACGT")
    texts = [
        "ATACCCCGATAATACCCCAG",
        "TACCCCTACCCCGGG",
        "ATATATACCCC",
        "CCCCGGGGAAAA",
    ]
    documents = [
        WeightedString(text, [1.0 + 0.25 * (i % 4) for i in range(len(text))],
                       alphabet)
        for text in texts
    ]
    collection = WeightedStringCollection(documents)

    # --- Sharded build (parallel across processes) ---------------------
    sharded = ShardedUsiIndex.build(collection, 2, k=20)
    mono = UsiIndex.build(collection.combined, k=20)
    for pattern in ["TACCCC", "CCCC", "GGG", "TTTT"]:
        assert sharded.utility(pattern) == mono.query(
            collection.encode_pattern(pattern)
        )
    print(f"sharded index: {sharded.shard_count} shards, "
          f"answers equal the monolithic index")

    # --- The engine: batched queries + LRU cache -----------------------
    engine = QueryEngine(sharded, cache_size=256)
    workload = ["TACCCC", "CCCC", "TACCCC", "GGG", "TACCCC", "CCCC"]
    values = engine.query_batch(workload)   # cold: misses fill the cache
    engine.query_batch(workload)            # warm: every lookup hits
    stats = engine.stats()
    print(f"two batches of {len(workload)}: hit rate {stats['hit_rate']:.2f}, "
          f"U('TACCCC') = {values[0]:.2f}")

    # --- Registry + HTTP server ----------------------------------------
    registry = IndexRegistry(cache_size=256)
    registry.register("sessions", sharded)
    registry.register("sessions-mono", mono)
    with UsiServer(registry, port=0) as server:
        print(f"serving on {server.url}")
        request = urllib.request.Request(
            server.url + "/query",
            data=json.dumps(
                {"index": "sessions",
                 "patterns": ["TACCCC", "CCCC", "TTTT"],
                 "count": True}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            body = json.loads(response.read())
        for row in body["results"]:
            print(f"  U({row['pattern']!r:9}) = {row['utility']:8.2f}"
                  f"   occurrences = {row['count']}")
        with urllib.request.urlopen(server.url + "/stats", timeout=10) as response:
            served = json.loads(response.read())
        print(f"server answered {served['server']['total_queries']} queries, "
              f"p99 = {served['server']['p99_ms']:.2f} ms")
    print("server stopped.")


if __name__ == "__main__":
    main()
