"""IoT scenario: streaming sensor data, long repeats, and appends.

A network monitor observes a near-periodic rotation of beacon
identifiers, each reading weighted by its RSSI (link quality).  The
example shows (1) why the streaming top-K heuristics miss the long
repeated sweep patterns while Exact/Approximate-Top-K find them, and
(2) the dynamic index absorbing newly streamed readings.

Run with:  python examples/iot_link_quality.py
"""

from repro import DynamicUsiIndex, SubstringHK, TopKTrie, UsiIndex
from repro.core.approximate import ApproximateTopK
from repro.core.exact_topk import exact_top_k
from repro.datasets import make_iot
from repro.eval.metrics import evaluate_miner
from repro.suffix.suffix_array import SuffixArray


def main() -> None:
    ws = make_iot(12_000, seed=1)
    k = ws.length // 60
    print(f"IOT trace: n={ws.length}, K={k}")

    # --- Long frequent substrings: who finds them? ---------------------
    index = SuffixArray(ws.codes)
    exact = exact_top_k(ws, k)
    at = ApproximateTopK(ws, k=k, s=8).mine()
    sh = SubstringHK(ws, k=k, seed=0).mine()
    tt = TopKTrie(ws, k=k).mine()

    print("\nlongest substring found in the estimated top-K:")
    print(f"  Exact-Top-K       : {max(m.length for m in exact):5d}")
    print(f"  Approximate-Top-K : {max(m.length for m in at):5d}")
    print(f"  SubstringHK       : {max((m.length for m in sh), default=0):5d}")
    print(f"  Top-K-Trie        : {max((m.length for m in tt), default=0):5d}")

    print("\nestimation accuracy (vs the exact top-K):")
    for name, results in [("AT", at), ("SH", sh), ("TT", tt)]:
        scores = evaluate_miner(results, index, k)
        print(f"  {name}: accuracy={scores.accuracy_percent:5.1f}%  "
              f"NDCG={scores.ndcg:.4f}")

    # --- Querying link quality of a sweep pattern ----------------------
    usi = UsiIndex.build(ws, k=k)
    sweep = ws.codes[: 15].astype("int64")  # one-and-a-bit beacon rotations
    print(f"\nU(first 15-reading sweep) = {usi.query(sweep):.3f} "
          f"over {usi.count(sweep)} occurrences")

    # --- Streaming appends (Section X) ---------------------------------
    dyn = DynamicUsiIndex(ws, k=k, rebuild_fraction=0.5)
    new_readings = ws.codes[:300]  # the rotation continues
    for code, utility in zip(new_readings, ws.utilities[:300]):
        dyn.append(int(code), float(utility))
    print(f"\nappended 300 readings (rebuilds: {dyn.rebuild_count}); "
          f"U(sweep) now {dyn.query(sweep):.3f}")


if __name__ == "__main__":
    main()
