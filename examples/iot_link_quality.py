"""IoT scenario: streaming sensor data, long repeats, and appends.

A network monitor observes a near-periodic rotation of beacon
identifiers, each reading weighted by its RSSI (link quality).  The
example shows (1) the very long repeated sweep patterns this world is
registered for, (2) the dynamic index absorbing newly streamed
readings, and (3) the pinned baseline the ``iot_link_quality``
scenario re-verifies on every regression run.

Run with:  python examples/iot_link_quality.py
"""

import repro
from repro import DynamicUsiIndex
from repro.core.exact_topk import exact_top_k
from repro.datasets import compute_baseline, get_scenario, verify_baseline

SCENARIO = "iot_link_quality"


def main() -> int:
    scenario = get_scenario(SCENARIO)
    ws = scenario.make(seed=0)  # pinned size, seed 0
    k = scenario.default_k()
    print(f"IOT trace: n={ws.length}, K={k}")

    # The rotation makes frequent substrings *very* long — the regime
    # where streaming top-K heuristics fail and Exact-Top-K shines.
    exact = exact_top_k(ws, k)
    print(f"longest substring in the exact top-K: "
          f"{max(m.length for m in exact)} readings")

    # Querying link quality of a sweep pattern.
    usi = repro.build(ws, backend="usi", k=k)
    sweep = ws.codes[:15].astype("int64")  # one-and-a-bit beacon rotations
    print(f"U(first 15-reading sweep) = {usi.query(sweep):.3f} "
          f"over {usi.count(sweep)} occurrences")

    # Streaming appends: the rotation continues.
    dyn = DynamicUsiIndex(ws, k=k, rebuild_fraction=0.5)
    for code, utility in zip(ws.codes[:300], ws.utilities[:300]):
        dyn.append(int(code), float(utility))
    print(f"appended 300 readings (rebuilds: {dyn.rebuild_count}); "
          f"U(sweep) now {dyn.query(sweep):.3f}")

    baseline = compute_baseline(SCENARIO)
    problems = verify_baseline(SCENARIO, baseline)
    print(f"\npinned answers_sum over the canonical workload: "
          f"{baseline['answers_sum']:.3f}")
    if problems:
        print("baseline: DRIFT")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("baseline: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
